"""Run one (task, planner, budget) combination and sweep grids of them.

Sweeps can execute their grid points in parallel worker processes
(``sweep(..., jobs=N)``, surfaced as ``repro sweep --jobs N``).  Every
grid point is an independent deterministic simulation — the loader
restarts from its own seed, the model is rebuilt fresh, and the fault
plan's seed is *derived* from (base seed, task, planner, budget) with the
same :func:`derive_fault_seed` in both the serial and the parallel path —
so a parallel sweep returns byte-identical results to a serial one, in
the same order.
"""

from __future__ import annotations

import math
import multiprocessing
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace as _dc_replace
from typing import Callable, Iterable, Optional, Sequence, TypeVar

from repro.core.planner import MimosePlanner
from repro.engine.executor import TrainingExecutor
from repro.engine.stats import RunResult
from repro.engine.trace import MemoryTimeline
from repro.experiments.tasks import TaskContext
from repro.planners.base import ModelView, Planner
from repro.planners.capuchin import CapuchinPlanner
from repro.planners.checkmate import CheckmatePlanner
from repro.planners.dtr import DTRPlanner
from repro.planners.monet import MonetPlanner
from repro.planners.none import NoCheckpointPlanner
from repro.planners.sublinear import SublinearPlanner
from repro.solvers import Solver, make_solver, solver_class, solver_names
from repro.tensorsim.device import DeviceModel, V100
from repro.tensorsim.faults import FaultInjector, FaultPlan

PLANNER_NAMES = (
    "baseline", "sublinear", "checkmate", "monet", "dtr", "capuchin", "mimose"
)

#: every registered solver Mimose's excess-covering step can run with
#: (``repro run --solver``).  "greedy" is the paper's Algorithm 1
#: (recompute-only) and the default; "knapsack" is the 0/1 alternative;
#: "hybrid" prices RECOMPUTE against SWAP per unit with the shared PCIe
#: cost model; the rest are the optimality-harness solvers (exact, lp,
#: chen-*) and the static planner cores (sublinear, checkmate).
SOLVER_NAMES = solver_names()

#: the pre-registry subset (the original ``--scheduler`` choices), kept
#: for callers that enumerate the paper's own scheduler family.
SCHEDULER_NAMES = ("greedy", "knapsack", "hybrid")


def make_scheduler(
    name: str,
    *,
    device: Optional[DeviceModel] = None,
    bwd_ratio: Optional[float] = None,
) -> Solver:
    """Construct a solver by name — the registry's experiment-side door.

    Kept under its pre-registry name; delegates to
    :func:`repro.solvers.make_solver` with the experiment default device
    so action-pricing solvers (hybrid, exact, lp) price PCIe transfers
    on the V100 preset every run uses.  ``bwd_ratio`` forces ratio
    pricing instead of measured backward times (``--bwd-ratio`` on the
    CLI); it is an explicit override only — the default is measured
    pricing with the labelled
    :data:`~repro.solvers.PcieCostModel.DEFAULT_BWD_RATIO` fallback.
    """
    return make_solver(
        name, device=device or DeviceModel(V100), bwd_ratio=bwd_ratio
    )


def make_planner(
    name: str,
    budget_bytes: int,
    task: TaskContext,
    *,
    device: Optional[DeviceModel] = None,
    scheduler: Optional[str] = None,
    bwd_ratio: Optional[float] = None,
    drift_detection: bool = False,
    static_fit: bool = False,
) -> Planner:
    """Construct a planner by name, wired to the task's offline knowledge.

    Static planners receive the shapes their papers allow them to know
    offline; Mimose receives only the budget (plus, optionally, a
    registered solver name for its excess-covering step — the only
    planner whose solver is runtime-pluggable).  ``bwd_ratio`` forces
    ratio pricing in action-pricing solvers' cost models and is rejected
    for coverage-only solvers (``Solver.prices_actions`` is the gate).

    ``drift_detection`` arms Mimose's lifecycle drift monitors (online
    replanning); ``static_fit`` is the ablation comparator that never
    refits — its recollect margin is infinite, so the initial fit is
    trusted for every later input size.  Both are Mimose-only.
    """
    if scheduler is not None and name != "mimose":
        raise ValueError(
            f"--solver applies to the mimose planner only, not {name!r}"
        )
    if bwd_ratio is not None and (
        scheduler is None or not solver_class(scheduler).prices_actions
    ):
        raise ValueError(
            "--bwd-ratio applies to action-pricing solvers only "
            "(hybrid, exact, lp); pass e.g. --solver hybrid"
        )
    if (drift_detection or static_fit) and name != "mimose":
        raise ValueError(
            "drift_detection/static_fit apply to the mimose planner only, "
            f"not {name!r}"
        )
    if drift_detection and static_fit:
        raise ValueError("drift_detection and static_fit are exclusive")
    if name == "baseline":
        return NoCheckpointPlanner(budget_bytes)
    if name == "sublinear":
        return SublinearPlanner(budget_bytes, worst_case_batch=task.worst_case)
    if name == "checkmate":
        return CheckmatePlanner(
            budget_bytes,
            assumed_batch=task.assumed_static_batch(),
            enforce_budget=task.spec.static_plan_for_worst_case,
        )
    if name == "monet":
        return MonetPlanner(
            budget_bytes,
            assumed_batch=task.assumed_static_batch(),
            enforce_budget=task.spec.static_plan_for_worst_case,
        )
    if name == "dtr":
        return DTRPlanner(budget_bytes)
    if name == "capuchin":
        return CapuchinPlanner(budget_bytes)
    if name == "mimose":
        kwargs: dict[str, object] = {}
        if scheduler is not None:
            kwargs["scheduler"] = make_scheduler(
                scheduler, device=device, bwd_ratio=bwd_ratio
            )
        if drift_detection:
            kwargs["drift_detection"] = True
        if static_fit:
            kwargs["recollect_margin"] = math.inf
        return MimosePlanner(budget_bytes, **kwargs)  # type: ignore[arg-type]
    raise KeyError(f"unknown planner {name!r}; available: {PLANNER_NAMES}")


def run_task(
    task: TaskContext,
    planner_name: str,
    budget_bytes: int,
    *,
    device: Optional[DeviceModel] = None,
    timeline: Optional[MemoryTimeline] = None,
    max_iterations: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    max_retries: int = 3,
    observers: Sequence[Callable[[TrainingExecutor], None]] = (),
    scheduler: Optional[str] = None,
    bwd_ratio: Optional[float] = None,
    compiled: bool = True,
    drift_detection: bool = False,
    static_fit: bool = False,
    gap_sizes: int = 0,
) -> RunResult:
    """Execute the task's loader under one planner and budget.

    The executor capacity follows the planner contract: plan-based
    planners that promise to respect the budget get exactly the budget;
    reactive/static-overshooting ones get physical device memory so their
    overshoot is observable (Fig 5 / Fig 10 annotations).

    ``faults`` injects deterministic memory pressure (see
    :mod:`repro.tensorsim.faults`); each run builds its own injector so
    sweeps stay independent.  ``max_retries`` bounds the OOM recovery
    ladder for planners that support it (Mimose).

    ``observers`` are callables invoked with the freshly built executor
    before the first iteration — the hook for attaching event-bus
    subscribers (``lambda ex: ex.events.subscribe(handler, ...)``)
    without reaching into executor internals.  Observers must not change
    simulated behaviour (the bus is observe-only), so the digest contract
    is unaffected.

    ``scheduler`` names one of :data:`SOLVER_NAMES` for Mimose's
    excess-covering step (``--solver`` on the CLI); ``None`` keeps the
    planner's default.  Rejected for non-Mimose planners.  ``bwd_ratio``
    forces ratio pricing in action-pricing solvers (``--bwd-ratio``);
    rejected for coverage-only solvers.

    ``compiled`` toggles the executor's compiled-template tier
    (``--no-compiled`` on the CLI disables it); results are bit-identical
    either way — the tier only changes how fast iterations are served.

    ``drift_detection`` arms Mimose's lifecycle drift monitors;
    ``static_fit`` freezes the initial fit (infinite recollect margin) —
    the drift-benchmark comparator.  Both Mimose-only.

    ``gap_sizes > 0`` attaches per-input-size optimality gaps to the
    result after the run (``--gap-sizes`` on the CLI): the planner's
    solver is re-scored against the exact solver at that many of the
    run's input sizes (see :mod:`repro.experiments.optimality`).
    Post-run and digest-neutral — simulated behaviour is unchanged.
    """
    device = device or DeviceModel(V100)
    model = task.fresh_model()
    planner = make_planner(
        planner_name,
        budget_bytes,
        task,
        device=device,
        scheduler=scheduler,
        bwd_ratio=bwd_ratio,
        drift_detection=drift_detection,
        static_fit=static_fit,
    )
    planner.setup(ModelView(model))
    capacity = (
        device.memory_capacity
        if planner.requires_physical_capacity
        else budget_bytes
    )
    executor = TrainingExecutor(
        model,
        planner,
        device=device,
        capacity_bytes=capacity,
        coalescing=planner.allocator_coalescing,
        timeline=timeline,
        faults=FaultInjector(faults) if faults is not None else None,
        max_recovery_retries=max_retries,
        compiled=compiled,
    )
    for attach in observers:
        attach(executor)
    result = RunResult(task.spec.abbr, planner_name, budget_bytes)
    for i, batch in enumerate(task.loader):
        if max_iterations is not None and i >= max_iterations:
            break
        result.append(executor.step(batch))
    # Cache-effectiveness observability (Table III / bench_fastpath).
    plan_cache = getattr(planner, "cache", None)
    if plan_cache is not None:
        result.plan_cache_hits = plan_cache.hits
        result.plan_cache_misses = plan_cache.misses
    if executor.replay is not None:
        result.replay_hits = executor.replay.hits
        result.replay_misses = executor.replay.misses
    if executor.compiled is not None:
        result.compiled_hits = executor.compiled.hits
        result.compiled_misses = executor.compiled.misses
    lifecycle = getattr(planner, "lifecycle", None)
    if lifecycle is not None:
        result.refits = lifecycle.refit_count
        result.drift_events = lifecycle.drift_events
    if gap_sizes > 0:
        from repro.experiments.optimality import attach_gaps

        attach_gaps(planner, result, sizes_limit=gap_sizes, device=device)
    return result


# --------------------------------------------------------------------- sweeps


def derive_fault_seed(
    base_seed: int, task_name: str, planner_name: str, budget_bytes: int
) -> int:
    """Per-grid-point fault seed, stable across processes and runs.

    ``zlib.crc32`` rather than ``hash()`` because the latter is salted by
    ``PYTHONHASHSEED`` and would break serial/parallel equivalence across
    interpreter invocations.
    """
    tag = f"{base_seed}:{task_name}:{planner_name}:{budget_bytes}"
    return zlib.crc32(tag.encode("utf-8"))


def _point_faults(
    faults: Optional[FaultPlan],
    task_name: str,
    planner_name: str,
    budget_bytes: int,
) -> Optional[FaultPlan]:
    if faults is None:
        return None
    return _dc_replace(
        faults,
        seed=derive_fault_seed(
            faults.seed, task_name, planner_name, budget_bytes
        ),
    )


_T = TypeVar("_T")
_R = TypeVar("_R")

# Per-worker-process state installed by the pool initializer.  The heavy,
# not-necessarily-picklable objects (TaskContext, DeviceModel) travel to
# the workers through fork inheritance, not through the call queue.
_POOL_STATE: dict[str, object] = {}


def _pool_init(state: dict[str, object]) -> None:
    _POOL_STATE.update(state)


def _pool_run_point(
    point: tuple[str, int, Optional[FaultPlan], int, bool, bool],
) -> RunResult:
    planner_name, budget, faults, max_retries, drift, static = point
    return run_task(
        _POOL_STATE["task"],  # type: ignore[arg-type]
        planner_name,
        budget,
        device=_POOL_STATE["device"],  # type: ignore[arg-type]
        max_iterations=_POOL_STATE["max_iterations"],  # type: ignore[arg-type]
        faults=faults,
        max_retries=max_retries,
        compiled=_POOL_STATE["compiled"],  # type: ignore[arg-type]
        drift_detection=drift,
        static_fit=static,
        gap_sizes=_POOL_STATE.get("gap_sizes", 0),  # type: ignore[arg-type]
    )


def parallel_map(
    worker: Callable[[_T], _R],
    items: Sequence[_T],
    *,
    jobs: int,
    initializer: Optional[Callable[..., None]] = None,
    initargs: tuple = (),
) -> list[_R]:
    """Order-preserving process-pool map with a serial fallback.

    ``worker`` must be a module-level callable and ``items`` picklable.
    Falls back to a plain serial map when ``jobs <= 1``, when there is at
    most one item, or when the platform has no ``fork`` start method (the
    only start method that lets workers inherit non-picklable state from
    an initializer).
    """
    if jobs <= 1 or len(items) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [worker(item) for item in items]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        if initializer is not None:
            initializer(*initargs)
        return [worker(item) for item in items]
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(items)),
        mp_context=ctx,
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        return list(pool.map(worker, items))


def sweep(
    task: TaskContext,
    planner_names: Iterable[str],
    budgets: Iterable[int],
    *,
    device: Optional[DeviceModel] = None,
    max_iterations: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    max_retries: int = 3,
    jobs: int = 1,
    compiled: bool = True,
    drift_detection: bool = False,
    static_fit: bool = False,
    gap_sizes: int = 0,
) -> list[RunResult]:
    """Grid of runs; the baseline (budget-independent) runs once.

    Faults are injected into every non-baseline run with a per-grid-point
    seed (see :func:`derive_fault_seed`); the baseline stays fault-free so
    it remains a clean normalisation reference.

    ``jobs > 1`` executes the grid points in that many worker processes;
    results are byte-identical to a serial sweep and arrive in the same
    order (see module docstring).

    ``drift_detection``/``static_fit`` arm Mimose's lifecycle monitors /
    freeze its initial fit; they apply to the sweep's ``mimose`` points
    only, so mixed-planner sweeps under drift scenarios stay valid.

    ``gap_sizes > 0`` attaches optimality gaps to every grid point's
    result post-run (see :func:`run_task`); digests are unaffected, so
    serial/parallel equivalence holds with gaps on.
    """
    budgets = list(budgets)
    points: list[tuple[str, int, Optional[FaultPlan], int, bool, bool]] = []
    for name in planner_names:
        mimose = name == "mimose"
        drift = drift_detection and mimose
        static = static_fit and mimose
        if name == "baseline":
            points.append((name, budgets[0], None, max_retries, False, False))
            continue
        for budget in budgets:
            points.append(
                (
                    name,
                    budget,
                    _point_faults(faults, task.spec.abbr, name, budget),
                    max_retries,
                    drift,
                    static,
                )
            )
    state = {
        "task": task,
        "device": device,
        "max_iterations": max_iterations,
        "compiled": compiled,
        "gap_sizes": gap_sizes,
    }
    return parallel_map(
        _pool_run_point,
        points,
        jobs=jobs,
        initializer=_pool_init,
        initargs=(state,),
    )
