"""The six training tasks of Table II.

| Abbr.      | Task                | Dataset  | Model     | Batch |
|------------|---------------------|----------|-----------|-------|
| MC-Roberta | Multiple Choice     | SWAG     | Roberta-B | 16    |
| TR-T5      | Translation         | UN_PC    | T5        | 8     |
| QA-Bert    | Question Answering  | SQuAD    | Bert-B    | 12    |
| TC-Bert    | Text Classification | GLUE-QQP | Bert-B    | 32    |
| OD-R50     | Object Detection    | COCO     | ResNet50  | 8     |
| OD-R101    | Object Detection    | COCO     | ResNet101 | 6     |

A :class:`TaskContext` bundles everything a run needs: a fresh model, the
seeded data loader, the worst-case batch (for static planners), and
calibration percentiles of the input-size distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.datasets import DataLoader, apply_drift_scenario, make_dataset
from repro.models.base import BatchInput, SegmentedModel
from repro.models.registry import build_model
from repro.planners.analysis import full_checkpoint_peak, no_checkpoint_peak
from repro.planners.base import ModelView

GB = 1024**3


@dataclass(frozen=True)
class TaskSpec:
    """Static description of one Table II task."""

    abbr: str
    task: str
    dataset: str
    model: str
    batch_size: int
    #: whether the static planners' assumed shape is the worst case (NLP)
    #: or a calibration percentile (OD — their static graphs cannot follow
    #: MMDetection's variable shapes, hence the budget overshoot in Fig 10)
    static_plan_for_worst_case: bool = True


TASKS: dict[str, TaskSpec] = {
    "MC-Roberta": TaskSpec(
        "MC-Roberta", "Multiple Choice", "swag", "roberta-base", 16
    ),
    "TR-T5": TaskSpec("TR-T5", "Translation", "un_pc", "t5-base", 8),
    "QA-Bert": TaskSpec("QA-Bert", "Question Answering", "squad", "bert-base", 12),
    "TC-Bert": TaskSpec(
        "TC-Bert", "Text Classification", "glue-qqp", "bert-base", 32
    ),
    "OD-R50": TaskSpec(
        "OD-R50", "Object Detection", "coco", "resnet50-det", 8,
        static_plan_for_worst_case=False,
    ),
    "OD-R101": TaskSpec(
        "OD-R101", "Object Detection", "coco", "resnet101-det", 6,
        static_plan_for_worst_case=False,
    ),
    # Extension task (not in the paper's Table II): causal language
    # modelling with document-length dynamics.
    "LM-GPT2": TaskSpec("LM-GPT2", "Language Modeling", "webtext", "gpt2-small", 8),
}


@dataclass
class TaskContext:
    """Everything needed to run one task."""

    spec: TaskSpec
    loader: DataLoader
    worst_case: BatchInput
    calibration: list[BatchInput] = field(repr=False, default_factory=list)

    def fresh_model(self) -> SegmentedModel:
        return build_model(self.spec.model)

    def percentile_batch(self, q: float) -> BatchInput:
        """Calibration batch at quantile ``q`` of input size."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        ordered = sorted(self.calibration, key=lambda b: b.input_size)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def assumed_static_batch(self) -> BatchInput:
        """The shape static planners (Checkmate/MONeT) were solved for."""
        if self.spec.static_plan_for_worst_case:
            return self.worst_case
        return self.percentile_batch(0.95)

    def memory_bounds(self) -> tuple[int, int]:
        """(lower, upper) peak bytes at the worst-case input — the Fig 10
        "*" markers: full checkpointing vs no checkpointing."""
        model = self.fresh_model()
        view = ModelView(model)
        profiles = view.profiles(self.worst_case)
        lb = full_checkpoint_peak(
            profiles,
            static_bytes=view.static_memory.total,
            input_nbytes=self.worst_case.nbytes,
            checkpointable=view.checkpointable,
        )
        ub = no_checkpoint_peak(
            profiles,
            static_bytes=view.static_memory.total,
            input_nbytes=self.worst_case.nbytes,
        )
        return lb, ub

    def default_budgets(self, count: int = 4) -> list[int]:
        """An evenly spaced budget sweep over the memory-constrained regime
        (between the full-checkpoint floor and 85 % of the no-checkpoint
        peak — the paper's budgets likewise sit strictly below the
        worst-case unconstrained footprint)."""
        lb, ub = self.memory_bounds()
        lo = int(lb * 1.25)
        hi = int(ub * 0.85)
        if count == 1 or hi <= lo:
            return [max(lo, hi)]
        step = (hi - lo) / (count - 1)
        return [int(lo + i * step) for i in range(count)]


def load_task(
    abbr: str,
    *,
    iterations: int = 100,
    seed: int = 0,
    calibration_samples: int = 200,
    drift_scenario: str | None = None,
) -> TaskContext:
    """Build the :class:`TaskContext` for a Table II abbreviation.

    ``drift_scenario`` names one of
    :data:`repro.data.datasets.DRIFT_SCENARIOS` to rewrite the preset's
    input-size samplers into a non-stationary trajectory spanning the
    run (``--drift-scenario`` on the CLI); ``None`` keeps the paper's
    stationary Table II distributions.
    """
    try:
        spec = TASKS[abbr]
    except KeyError:
        raise KeyError(f"unknown task {abbr!r}; available: {sorted(TASKS)}") from None
    dataset = make_dataset(spec.dataset)
    if drift_scenario is not None:
        dataset = apply_drift_scenario(dataset, drift_scenario, iterations)
    loader = DataLoader(dataset, spec.batch_size, iterations, seed=seed)
    return TaskContext(
        spec=spec,
        loader=loader,
        worst_case=loader.worst_case_batch(),
        calibration=loader.peek_sizes(calibration_samples),
    )
