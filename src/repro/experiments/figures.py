"""Data generators for every figure in the paper.

Each ``figN_data`` function returns plain dict/list structures holding the
same series the corresponding figure plots; the benchmarks print them and
EXPERIMENTS.md records paper-vs-measured shapes.  No plotting dependency is
required (or available) — the numbers are the reproduction.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

import numpy as np

from repro.experiments.runner import run_task, sweep
from repro.experiments.tasks import GB, load_task
from repro.models.base import BatchInput
from repro.models.registry import build_model
from repro.planners.analysis import no_checkpoint_peak, predict_peak_bytes
from repro.planners.base import CheckpointPlan, ModelView
from repro.tensorsim.dtypes import INT64


# ---------------------------------------------------------------------------
# Fig 3 — input-size distributions and memory footprint vs input size
# ---------------------------------------------------------------------------

def fig3_data(
    iterations: int = 300, memory_points: int = 8, seed: int = 0
) -> dict[str, dict[str, object]]:
    """Per NLP task: the collated-length histogram and the GPU memory
    footprint (no checkpointing) as a function of input size.

    The paper plots Bert-base on SWAG/SQuAD/GLUE-QQP and T5-base on UN_PC
    with batch sizes 16/12/32/8; the memory curve's smoothness is the
    §III-A argument for an analytic estimator.
    """
    combos = [
        ("swag", "MC-Roberta"),
        ("squad", "QA-Bert"),
        ("glue-qqp", "TC-Bert"),
        ("un_pc", "TR-T5"),
    ]
    out: dict[str, dict[str, object]] = {}
    for dataset_name, task_abbr in combos:
        task = load_task(task_abbr, iterations=iterations, seed=seed)
        lengths = [b.shape[-1] for b in task.loader]
        histogram = dict(sorted(Counter(lengths).items()))
        # memory footprint curve over the observed length range
        model = task.fresh_model()
        view = ModelView(model)
        rows = next(iter(task.loader)).shape[0]
        lo, hi = min(lengths), max(lengths)
        sizes = np.linspace(lo, hi, memory_points).astype(int)
        curve = []
        for length in sizes:
            batch = BatchInput((rows, int(length)), INT64)
            peak = no_checkpoint_peak(
                view.profiles(batch),
                static_bytes=view.static_memory.total,
                input_nbytes=batch.nbytes,
            )
            curve.append((int(length), peak))
        out[dataset_name] = {
            "task": task_abbr,
            "length_range": (lo, hi),
            "histogram": histogram,
            "memory_curve_bytes": curve,
        }
    return out


# ---------------------------------------------------------------------------
# Fig 4 — Sublinear's wasted budget on small inputs (TC-Bert @ 3 GB)
# ---------------------------------------------------------------------------

def fig4_data(
    budget_gb: float = 3.0, iterations: int = 60, seed: int = 0
) -> dict[str, object]:
    """Per-iteration peak memory and time: Sublinear vs no checkpointing.

    The paper's observation: Sublinear plans for the largest input, so a
    small input leaves over a GB of budget unused while paying recompute —
    up to 35 % throughput loss.
    """
    task = load_task("TC-Bert", iterations=iterations, seed=seed)
    budget = int(budget_gb * GB)
    sub = run_task(task, "sublinear", budget)
    base = run_task(task, "baseline", budget)
    rows = []
    for s_sub, s_base in zip(sub.iterations, base.iterations):
        rows.append(
            {
                "iteration": s_sub.iteration,
                "seqlen": s_sub.input_shape[-1],
                "sublinear_peak": s_sub.peak_in_use,
                "baseline_peak": s_base.peak_in_use,
                "unused_budget": max(0, budget - s_sub.peak_in_use),
                "slowdown": s_sub.total_time / s_base.total_time,
            }
        )
    return {
        "budget_bytes": budget,
        "rows": rows,
        "mean_slowdown": sub.total_time / base.total_time,
        "max_unused_budget": max(r["unused_budget"] for r in rows),
    }


# ---------------------------------------------------------------------------
# Fig 5 — DTR's overheads and memory overshoot (MC-Roberta)
# ---------------------------------------------------------------------------

def fig5_data(
    budgets_gb: tuple[float, ...] = (4.2, 4.5, 5.0, 5.5),
    iterations: int = 60,
    seed: int = 0,
) -> list[dict[str, object]]:
    """DTR training-time breakdown and actual memory per budget.

    The paper reports upkeep at 26 % average (40.1 % max), planning up to
    11.9 %, and actual usage of 6.7/7/7.5/8 GB for budgets 4.2/4.5/5/5.5.
    """
    task = load_task("MC-Roberta", iterations=iterations, seed=seed)
    rows = []
    for budget_gb in budgets_gb:
        result = run_task(task, "dtr", int(budget_gb * GB))
        breakdown = result.time_breakdown()
        total = result.total_time
        rows.append(
            {
                "budget_gb": budget_gb,
                "actual_reserved_gb": result.peak_reserved / GB,
                "peak_in_use_gb": result.peak_in_use / GB,
                "upkeep_frac": breakdown["upkeep_time"] / total,
                "planning_frac": breakdown["planning_time"] / total,
                "recompute_frac": breakdown["recompute_time"] / total,
                "compute_frac": (
                    breakdown["fwd_time"]
                    + breakdown["bwd_time"]
                    + breakdown["optimizer_time"]
                )
                / total,
                "evictions": sum(s.evictions for s in result.iterations),
                "oom_iterations": result.oom_count,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig 9 — peak memory when checkpointing encoder k of Bert-base
# ---------------------------------------------------------------------------

def fig9_data(
    seqlens: tuple[int, ...] = (128, 256, 384, 512),
    batch_size: int = 32,
) -> dict[int, list[tuple[int, int]]]:
    """For each input size: peak bytes with exactly encoder k checkpointed.

    Checkpointing the *last* encoder gives almost no peak reduction — its
    recompute happens when every other activation is still resident —
    which motivates Algorithm 1's earliest-timestamp preference.
    """
    model = build_model("bert-base")
    view = ModelView(model)
    out: dict[int, list[tuple[int, int]]] = {}
    for seqlen in seqlens:
        batch = BatchInput((batch_size, seqlen), INT64)
        profiles = view.profiles(batch)
        series = []
        for k in range(12):
            plan = CheckpointPlan.of([f"encoder.{k}"], f"enc{k}")
            peak = predict_peak_bytes(
                profiles,
                plan,
                static_bytes=view.static_memory.total,
                input_nbytes=batch.nbytes,
                checkpointable=view.checkpointable,
            )
            series.append((k, peak))
        out[seqlen] = series
    return out


# ---------------------------------------------------------------------------
# Fig 10 — normalized training time vs budget, all tasks x planners
# ---------------------------------------------------------------------------

def fig10_data(
    task_abbr: str,
    *,
    budgets: Optional[list[int]] = None,
    planners: tuple[str, ...] = ("sublinear", "checkmate", "monet", "dtr", "mimose"),
    iterations: int = 60,
    seed: int = 0,
    jobs: int = 1,
) -> dict[str, object]:
    """One Fig 10 panel: normalized times per planner per budget + bounds.

    ``jobs > 1`` runs the (planner, budget) grid in parallel worker
    processes; the numbers are byte-identical to a serial run.  The
    baseline is budget-independent (it ignores the budget entirely), so
    taking it from the sweep's single baseline run is exact.
    """
    task = load_task(task_abbr, iterations=iterations, seed=seed)
    budgets = budgets or task.default_budgets()
    results = sweep(
        task, ("baseline",) + tuple(planners), budgets, jobs=jobs
    )
    baseline = next(r for r in results if r.planner_name == "baseline")
    lb, ub = task.memory_bounds()
    series: dict[str, list[dict[str, object]]] = {}
    for name in planners:
        rows = []
        for r in results:
            if r.planner_name != name:
                continue
            rows.append(
                {
                    "budget_gb": r.budget_bytes / GB,
                    "normalized_time": r.normalized_time(baseline),
                    "peak_reserved_gb": r.peak_reserved / GB,
                    "oom_iterations": r.oom_count,
                    "respects_budget": r.peak_reserved <= r.budget_bytes,
                }
            )
        series[name] = rows
    return {
        "task": task_abbr,
        "budgets_gb": [b / GB for b in budgets],
        "memory_lower_bound_gb": lb / GB,
        "memory_upper_bound_gb": ub / GB,
        "series": series,
    }


# ---------------------------------------------------------------------------
# Fig 11 — Mimose memory consumption vs input size per budget
# ---------------------------------------------------------------------------

def fig11_data(
    budgets_gb: tuple[float, ...] = (4.0, 5.0, 6.0),
    iterations: int = 120,
    seed: int = 0,
    task_abbr: str = "TC-Bert",
    jobs: int = 1,
) -> dict[float, list[dict[str, object]]]:
    """Per-iteration (input size, peak memory, plan size) under Mimose.

    The paper's shape: memory rises with input size until the budget is
    reached, then flattens just below it (a 0.5–1 GB reserve), with small
    plateaus where similar sizes share cached plans.  ``jobs > 1`` runs
    the budgets in parallel worker processes with identical results.
    """
    task = load_task(task_abbr, iterations=iterations, seed=seed)
    results = sweep(
        task, ("mimose",), [int(b * GB) for b in budgets_gb], jobs=jobs
    )
    out: dict[float, list[dict[str, object]]] = {}
    for budget_gb, result in zip(budgets_gb, results):
        rows = []
        for s in result.iterations:
            rows.append(
                {
                    "input_size": s.input_size,
                    "peak_bytes": s.peak_in_use,
                    "mode": s.mode,
                    "num_checkpointed": s.num_checkpointed,
                    "oom": s.oom,
                }
            )
        out[budget_gb] = rows
    return out
