"""Post-run analysis utilities: comparisons, exports, shape checks.

These helpers operate on :class:`~repro.engine.stats.RunResult`s so users
can interrogate sweeps (and persist them) without re-running simulations.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Mapping, Sequence

from repro.engine.stats import RunResult

GB = 1024**3


# ---------------------------------------------------------------- comparison

def compare_runs(
    runs: Sequence[RunResult], baseline_name: str = "baseline"
) -> list[dict[str, object]]:
    """Normalise a set of runs against the named baseline.

    Returns one row per run with normalized time, memory, and overheads.
    Raises ValueError if the baseline run is absent.
    """
    baseline = next(
        (r for r in runs if r.planner_name == baseline_name), None
    )
    if baseline is None:
        raise ValueError(f"no run named {baseline_name!r} among {len(runs)} runs")
    rows = []
    for r in runs:
        breakdown = r.time_breakdown()
        rows.append(
            {
                "task": r.task_name,
                "planner": r.planner_name,
                "budget_gb": r.budget_bytes / GB,
                "normalized_time": r.normalized_time(baseline),
                "peak_used_gb": r.peak_in_use / GB,
                "peak_reserved_gb": r.peak_reserved / GB,
                "budget_utilisation": r.peak_in_use / r.budget_bytes,
                "recompute_frac": breakdown["recompute_time"] / r.total_time
                if r.total_time
                else 0.0,
                "overhead_frac": r.overhead_fraction(),
                "oom_iterations": r.oom_count,
                "succeeded": r.succeeded,
            }
        )
    return rows


def improvement_over(
    runs: Sequence[RunResult], planner: str, reference: str
) -> float:
    """Mean relative speedup of ``planner`` over ``reference`` at matched
    budgets: positive means ``planner`` is faster."""
    by_key: dict[tuple[str, int], RunResult] = {
        (r.planner_name, r.budget_bytes): r for r in runs
    }
    ratios = []
    for (name, budget), r in by_key.items():
        if name != planner:
            continue
        ref = by_key.get((reference, budget))
        if ref is None or r.total_time == 0:
            continue
        ratios.append(ref.total_time / r.total_time - 1.0)
    if not ratios:
        raise ValueError(
            f"no matched budgets between {planner!r} and {reference!r}"
        )
    return sum(ratios) / len(ratios)


# ------------------------------------------------------------------- export

_ITERATION_FIELDS = (
    "iteration", "input_size", "mode", "plan_label", "num_checkpointed",
    "fwd_time", "bwd_time", "recompute_time", "collect_time",
    "planning_time", "upkeep_time", "optimizer_time", "swap_stall_time",
    "peak_in_use", "peak_reserved", "end_in_use", "fragmentation_bytes",
    "evictions", "num_swapped", "oom",
)


def iterations_to_csv(result: RunResult) -> str:
    """Serialise a run's per-iteration stats as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(_ITERATION_FIELDS)
    for s in result.iterations:
        writer.writerow([getattr(s, f) for f in _ITERATION_FIELDS])
    return buf.getvalue()


def run_to_json(result: RunResult) -> str:
    """Serialise a run summary plus per-iteration stats as JSON text."""
    payload = {
        "task": result.task_name,
        "planner": result.planner_name,
        "budget_bytes": result.budget_bytes,
        "total_time_s": result.total_time,
        "peak_in_use": result.peak_in_use,
        "peak_reserved": result.peak_reserved,
        "succeeded": result.succeeded,
        "iterations": [
            {f: getattr(s, f) for f in _ITERATION_FIELDS}
            for s in result.iterations
        ],
    }
    return json.dumps(payload, indent=2)


# ------------------------------------------------------------- shape checks

def check_paper_shape(
    rows: Mapping[str, Sequence[Mapping[str, object]]],
) -> list[str]:
    """Validate a Fig 10-style series dict against the paper's claims.

    Args:
        rows: ``{planner: [{budget_gb, normalized_time, respects_budget,
            oom_iterations}, ...]}`` as produced by
            :func:`repro.experiments.figures.fig10_data`'s ``series``.

    Returns a list of human-readable violations (empty = shape holds).
    """
    problems: list[str] = []
    mimose = rows.get("mimose")
    if not mimose:
        return ["no mimose series present"]
    for point in mimose:
        if not point["respects_budget"]:
            problems.append(
                f"mimose exceeded the budget at {point['budget_gb']:.2f} GB"
            )
        if point["oom_iterations"]:
            problems.append(
                f"mimose hit OOM at {point['budget_gb']:.2f} GB"
            )
    for rival in ("sublinear", "dtr"):
        series = rows.get(rival)
        if not series:
            continue
        n = len(series)
        wins = sum(
            1
            for m, r in zip(mimose, series)
            if m["normalized_time"] <= r["normalized_time"] * 1.02
        )
        if wins < (n + 1) // 2:
            problems.append(
                f"mimose beats {rival} at only {wins}/{n} budgets"
            )
    times = [p["normalized_time"] for p in mimose]
    if times and times[-1] > times[0] + 0.02:
        problems.append("mimose does not improve with larger budgets")
    return problems
