"""Experiment harness: Table II tasks, runs/sweeps, and the generators for
every figure and table in the paper's evaluation (§VI) plus the motivation
figures (§III)."""

from repro.experiments.tasks import TaskContext, TaskSpec, TASKS, load_task
from repro.experiments.runner import make_planner, run_task, sweep, PLANNER_NAMES
from repro.experiments import analysis, figures, tables
from repro.experiments.report import render_table, render_series

__all__ = [
    "TaskContext",
    "TaskSpec",
    "TASKS",
    "load_task",
    "make_planner",
    "run_task",
    "sweep",
    "PLANNER_NAMES",
    "analysis",
    "figures",
    "tables",
    "render_table",
    "render_series",
]
