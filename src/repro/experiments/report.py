"""Plain-text rendering of experiment rows (paper-style tables/series)."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Iterable[tuple[object, object]]],
    *,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render named (x, y) series as aligned text columns."""
    lines = []
    if title:
        lines.append(title)
    for name, points in series.items():
        lines.append(f"[{name}] ({x_label} -> {y_label})")
        for x, y in points:
            lines.append(f"  {_fmt(x):>12s} -> {_fmt(y)}")
    return "\n".join(lines)
