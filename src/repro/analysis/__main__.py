"""``python -m repro.analysis`` — the replint CLI entry point."""

import sys

from repro.analysis.cli import main

sys.exit(main())
