"""replint — AST-based invariant linter for this reproduction.

The repo's headline guarantees (bit-identical replay, digest parity
across the 23-point grid, serial == parallel sweeps) rest on invariants
that used to live only in docs/architecture.md and surfaced, when
violated, as an opaque run-level digest mismatch.  ``replint`` checks
them statically, at lint time:

============================  =============================================
rule                          invariant
============================  =============================================
``rng-discipline``            all randomness flows through seeded, threaded
                              ``np.random.Generator`` objects
``wall-clock``                host time is confined to the allowlisted
                              planner-overhead stopwatch sites
``mode-branching``            ``ExecutionMode`` dispatch happens only in the
                              strategy registry
``event-bus-protocol``        bus payloads are frozen slotted dataclasses;
                              observers are callable
``determinism-taint``         no wall-clock/unseeded-RNG *value* flows into
                              digest-bearing state (dataflow tier)
``unit-flow``                 inferred bytes/KB/MB/GB/s/ms units never mix
                              additively, even through temporaries
``guard-dominance``           hot-path emits are CFG-dominated by a
                              ``bus.wants()`` branch
``invalidation-reachability``  every estimator-refit call path reaches the
                              plan-cache/replay/compiled flush
============================  =============================================

Run it with ``python -m repro.analysis [paths...]`` (or the ``replint``
console script).  Configuration lives in ``[tool.replint]`` in
pyproject.toml; grandfathered findings live in a JSON baseline (see
:mod:`repro.analysis.baseline`); new rules plug in through
:func:`register_rule`, mirroring the execution engine's
``register_strategy``.  docs/static-analysis.md is the user guide.
"""

from repro.analysis.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.config import ReplintConfig, load_config
from repro.analysis.core import (
    ConfigError,
    FileContext,
    Finding,
    Rule,
    analyze_contexts,
    analyze_sources,
    create_rules,
    discover_files,
    load_contexts,
    register_rule,
    registered_rules,
)

# importing the package registers the stock rules
from repro.analysis import rules as _builtin_rules  # noqa: F401

__all__ = [
    "BaselineEntry",
    "ConfigError",
    "FileContext",
    "Finding",
    "ReplintConfig",
    "Rule",
    "analyze_contexts",
    "analyze_sources",
    "apply_baseline",
    "create_rules",
    "discover_files",
    "load_baseline",
    "load_config",
    "load_contexts",
    "register_rule",
    "registered_rules",
    "write_baseline",
]
