"""``[tool.replint]`` configuration, read from pyproject.toml.

Python 3.11+ ships ``tomllib``; on 3.10 (the oldest interpreter this
repo supports, and one leg of the CI matrix) neither ``tomllib`` nor a
third-party TOML parser is guaranteed to be importable, and the repo
policy is to gate missing dependencies rather than require them.  The
fallback parser below therefore understands exactly the TOML subset the
``[tool.replint*]`` tables use — string/bool/int scalars and string
arrays, single-line or spread over multiple lines with trailing commas
and interior comment lines — and nothing more.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional

from repro.analysis.core import ConfigError

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on 3.10
    try:
        import tomli as _toml  # type: ignore[import-not-found]
    except ImportError:
        _toml = None


@dataclass(slots=True)
class ReplintConfig:
    """Resolved analyzer configuration.

    ``rules`` maps rule id → its option table (severity, allow globs,
    rule-specific keys), passed verbatim to ``Rule.configure``.
    """

    paths: tuple[str, ...] = ("src",)
    baseline: Optional[str] = "replint-baseline.json"
    rules: dict[str, dict] = field(default_factory=dict)
    root: Path = field(default_factory=Path.cwd)

    @classmethod
    def from_mapping(
        cls, data: Mapping[str, object], root: Path
    ) -> "ReplintConfig":
        cfg = cls(root=root)
        paths = data.get("paths")
        if paths is not None:
            if isinstance(paths, str):
                paths = [paths]
            cfg.paths = tuple(str(p) for p in paths)
        if "baseline" in data:
            baseline = data["baseline"]
            cfg.baseline = str(baseline) if baseline else None
        rules = data.get("rules", {})
        if not isinstance(rules, Mapping):
            raise ConfigError("[tool.replint.rules] must be a table")
        cfg.rules = {
            str(rule_id): dict(options)
            for rule_id, options in rules.items()
        }
        return cfg


def load_config(
    root: Path, pyproject: Optional[Path] = None
) -> ReplintConfig:
    """Read ``[tool.replint]`` from ``pyproject.toml`` under ``root``.

    A missing file or missing table yields the defaults — replint runs
    out of the box on an unconfigured tree.
    """
    path = pyproject or root / "pyproject.toml"
    if not path.is_file():
        return ReplintConfig(root=root)
    data = _load_toml(path)
    section = data.get("tool", {}).get("replint", {})
    if not isinstance(section, Mapping):
        raise ConfigError("[tool.replint] must be a table")
    return ReplintConfig.from_mapping(section, root=root)


def _load_toml(path: Path) -> dict:
    if _toml is not None:
        with path.open("rb") as fh:
            return _toml.load(fh)
    return _parse_minimal_toml(path.read_text())


# ---------------------------------------------------------------------------
# Dependency-free fallback (TOML subset; see module docstring)
# ---------------------------------------------------------------------------


_TABLE = re.compile(r"^\[(?P<name>[\w.\-\"]+)\]\s*$")
_KEYVAL = re.compile(r"^(?P<key>[\w\-\"]+)\s*=\s*(?P<value>.+)$")


def _parse_minimal_toml(text: str) -> dict:
    root: dict = {}
    current = root
    lines = iter(text.splitlines())
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[["):
            # array-of-tables ([[tool.mypy.overrides]] etc.): not part of
            # the replint subset — park keys in a throwaway table so they
            # cannot leak into a preceding [tool.replint*] section
            current = {}
            continue
        m = _TABLE.match(line)
        if m:
            current = root
            for part in m.group("name").split("."):
                current = current.setdefault(part.strip('"'), {})
            continue
        m = _KEYVAL.match(line)
        if m:
            value = m.group("value").strip()
            # multi-line array: keep consuming lines until every bracket
            # opened outside a string closes again; interior comment and
            # blank lines are dropped
            while _bracket_depth(value) > 0:
                nxt = next(lines, None)
                if nxt is None:
                    break
                nxt = nxt.strip()
                if not nxt or nxt.startswith("#"):
                    continue
                value += " " + nxt
            current[m.group("key").strip('"')] = _parse_value(value)
    return root


def _bracket_depth(value: str) -> int:
    """Net count of ``[`` not yet closed by ``]``, outside strings."""
    depth, quote = 0, ""
    for ch in value:
        if quote:
            if ch == quote:
                quote = ""
        elif ch in "\"'":
            quote = ch
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
    return depth


def _parse_value(value: str):
    # strip a trailing comment outside of quotes (best effort: the
    # replint tables keep comments on their own lines)
    if value == "true":
        return True
    if value == "false":
        return False
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1].strip()
        if not inner:
            return []
        return [
            _parse_value(v.strip())
            for v in _split_items(inner)
            if v.strip()  # tolerate the trailing comma of wrapped arrays
        ]
    if (value.startswith('"') and value.endswith('"')) or (
        value.startswith("'") and value.endswith("'")
    ):
        return value[1:-1]
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def _split_items(inner: str) -> list[str]:
    items, depth, quote, start = [], 0, "", 0
    for i, ch in enumerate(inner):
        if quote:
            if ch == quote:
                quote = ""
        elif ch in "\"'":
            quote = ch
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == "," and depth == 0:
            items.append(inner[start:i])
            start = i + 1
    tail = inner[start:].strip()
    if tail:
        items.append(tail)
    return items
