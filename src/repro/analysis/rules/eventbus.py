"""RPL004 ``event-bus-protocol`` — bus payloads and observers keep contract.

The digest-parity suite asserts that attaching observers changes
nothing, which only holds if (a) events are immutable values — a
handler that mutates a shared event corrupts every later subscriber in
delivery order — and (b) hot-path events nobody subscribed to are never
constructed (``EventBus.wants``), so observer presence cannot shift the
allocation/GC profile of a run.  This rule pins both halves of the
contract from docs/architecture.md ("Event bus"):

* **frozen events** — every class that is published on a bus
  (constructed directly inside ``*.emit(...)``) or subscribed to by
  type (``*.subscribe(handler, T, ...)`` / ``*.wants(T)``) must be
  declared ``@dataclass(frozen=True, slots=True)``.  Collection is
  project-wide: events are defined in ``engine/events.py`` but emitted
  from the strategies and the executor.
* **callable observers** — a class exposing the ``attach(bus)``
  convention (its body calls ``.subscribe``) must define ``__call__``;
  the bus invokes subscribers directly.

The third half of the historical contract — hot-path emits guarded by
``bus.wants(T)`` — moved to the dataflow tier as the ``guard-dominance``
rule (:mod:`repro.analysis.rules.guarddominance`), which checks CFG
dominance instead of lexical ancestry.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
    register_rule,
)


def _call_attr(node: ast.Call) -> str:
    """The attribute name of a method call (``bus.emit`` → ``"emit"``)."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


def _dataclass_decorator(cls: ast.ClassDef):
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        dotted = dotted_name(target)
        if dotted is not None and dotted.split(".")[-1] == "dataclass":
            return deco
    return None


@register_rule
class EventBusProtocolRule(Rule):
    id = "event-bus-protocol"
    summary = (
        "published events must be frozen slotted dataclasses and "
        "observers callable"
    )

    def __init__(self) -> None:
        super().__init__()
        #: names seen constructed inside ``.emit(...)`` or passed as type
        #: filters to ``.subscribe``/``.wants`` anywhere in the project
        self._event_names: set[str] = set()

    # ------------------------------------------------------------- pass 1

    def collect(self, ctx: FileContext) -> None:
        for node in ctx.nodes():
            if not isinstance(node, ast.Call):
                continue
            attr = _call_attr(node)
            if attr == "emit" and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Call):
                    name = dotted_name(arg.func)
                    if name is not None:
                        self._event_names.add(name.split(".")[-1])
            elif attr == "subscribe" and len(node.args) > 1:
                for type_arg in node.args[1:]:
                    name = dotted_name(type_arg)
                    if name is not None:
                        self._event_names.add(name.split(".")[-1])
            elif attr == "wants" and node.args:
                name = dotted_name(node.args[0])
                if name is not None:
                    self._event_names.add(name.split(".")[-1])

    # ------------------------------------------------------------- pass 2

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._check_event_classes(ctx)
        yield from self._check_observers(ctx)

    def _check_event_classes(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.nodes():
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in self._event_names:
                continue
            deco = _dataclass_decorator(node)
            if deco is None:
                yield self.finding(
                    ctx, node,
                    f"event class {node.name} is published on the bus but "
                    "is not a dataclass; declare it "
                    "@dataclass(frozen=True, slots=True)",
                )
                continue
            kwargs = (
                {k.arg: k.value for k in deco.keywords}
                if isinstance(deco, ast.Call)
                else {}
            )
            for flag in ("frozen", "slots"):
                value = kwargs.get(flag)
                if not (
                    isinstance(value, ast.Constant) and value.value is True
                ):
                    yield self.finding(
                        ctx, node,
                        f"event class {node.name} must be declared "
                        f"@dataclass({flag}=True): handlers run in "
                        "subscription order and must see identical, "
                        "immutable payloads",
                    )

    def _check_observers(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.nodes():
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                m.name: m
                for m in node.body
                if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            attach = methods.get("attach")
            if attach is None:
                continue
            subscribes = any(
                isinstance(sub, ast.Call) and _call_attr(sub) == "subscribe"
                for sub in ast.walk(attach)
            )
            if subscribes and "__call__" not in methods:
                yield self.finding(
                    ctx, node,
                    f"observer {node.name} subscribes itself in attach() "
                    "but defines no __call__; the bus invokes subscribers "
                    "directly",
                )

