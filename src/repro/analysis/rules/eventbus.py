"""RPL004 ``event-bus-protocol`` — bus payloads and observers keep contract.

The digest-parity suite asserts that attaching observers changes
nothing, which only holds if (a) events are immutable values — a
handler that mutates a shared event corrupts every later subscriber in
delivery order — and (b) hot-path events nobody subscribed to are never
constructed (``EventBus.wants``), so observer presence cannot shift the
allocation/GC profile of a run.  This rule pins both halves of the
contract from docs/architecture.md ("Event bus"):

* **frozen events** — every class that is published on a bus
  (constructed directly inside ``*.emit(...)``) or subscribed to by
  type (``*.subscribe(handler, T, ...)`` / ``*.wants(T)``) must be
  declared ``@dataclass(frozen=True, slots=True)``.  Collection is
  project-wide: events are defined in ``engine/events.py`` but emitted
  from the strategies and the executor.
* **callable observers** — a class exposing the ``attach(bus)``
  convention (its body calls ``.subscribe``) must define ``__call__``;
  the bus invokes subscribers directly.
* **guarded hot-path emits** — emits of the opt-in per-tensor event
  types listed in ``guarded-events`` (default: ``TensorAlloc``,
  ``SwapIn``, ``ReplayHit``) must sit inside an ``if ...wants(T)``
  guard so that a subscriber-free run pays one dict lookup, not an
  object construction, per event.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import (
    FileContext,
    Finding,
    ParentMap,
    Rule,
    dotted_name,
    register_rule,
)


def _call_attr(node: ast.Call) -> str:
    """The attribute name of a method call (``bus.emit`` → ``"emit"``)."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


def _dataclass_decorator(cls: ast.ClassDef):
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        dotted = dotted_name(target)
        if dotted is not None and dotted.split(".")[-1] == "dataclass":
            return deco
    return None


@register_rule
class EventBusProtocolRule(Rule):
    id = "event-bus-protocol"
    summary = (
        "published events must be frozen slotted dataclasses, observers "
        "callable, and hot-path emits guarded by bus.wants()"
    )

    def __init__(self) -> None:
        super().__init__()
        self.guarded_events: tuple[str, ...] = (
            "TensorAlloc",
            "SwapIn",
            "ReplayHit",
        )
        #: names seen constructed inside ``.emit(...)`` or passed as type
        #: filters to ``.subscribe``/``.wants`` anywhere in the project
        self._event_names: set[str] = set()

    def configure(self, options) -> None:
        super().configure(options)
        guarded = options.get("guarded-events")
        if guarded is not None:
            self.guarded_events = tuple(str(g) for g in guarded)

    # ------------------------------------------------------------- pass 1

    def collect(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            attr = _call_attr(node)
            if attr == "emit" and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Call):
                    name = dotted_name(arg.func)
                    if name is not None:
                        self._event_names.add(name.split(".")[-1])
            elif attr == "subscribe" and len(node.args) > 1:
                for type_arg in node.args[1:]:
                    name = dotted_name(type_arg)
                    if name is not None:
                        self._event_names.add(name.split(".")[-1])
            elif attr == "wants" and node.args:
                name = dotted_name(node.args[0])
                if name is not None:
                    self._event_names.add(name.split(".")[-1])

    # ------------------------------------------------------------- pass 2

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._check_event_classes(ctx)
        yield from self._check_observers(ctx)
        yield from self._check_guarded_emits(ctx)

    def _check_event_classes(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in self._event_names:
                continue
            deco = _dataclass_decorator(node)
            if deco is None:
                yield self.finding(
                    ctx, node,
                    f"event class {node.name} is published on the bus but "
                    "is not a dataclass; declare it "
                    "@dataclass(frozen=True, slots=True)",
                )
                continue
            kwargs = (
                {k.arg: k.value for k in deco.keywords}
                if isinstance(deco, ast.Call)
                else {}
            )
            for flag in ("frozen", "slots"):
                value = kwargs.get(flag)
                if not (
                    isinstance(value, ast.Constant) and value.value is True
                ):
                    yield self.finding(
                        ctx, node,
                        f"event class {node.name} must be declared "
                        f"@dataclass({flag}=True): handlers run in "
                        "subscription order and must see identical, "
                        "immutable payloads",
                    )

    def _check_observers(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                m.name: m
                for m in node.body
                if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            attach = methods.get("attach")
            if attach is None:
                continue
            subscribes = any(
                isinstance(sub, ast.Call) and _call_attr(sub) == "subscribe"
                for sub in ast.walk(attach)
            )
            if subscribes and "__call__" not in methods:
                yield self.finding(
                    ctx, node,
                    f"observer {node.name} subscribes itself in attach() "
                    "but defines no __call__; the bus invokes subscribers "
                    "directly",
                )

    def _check_guarded_emits(self, ctx: FileContext) -> Iterable[Finding]:
        guarded = set(self.guarded_events)
        if not guarded:
            return
        parents = None
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and _call_attr(node) == "emit"
                and node.args
                and isinstance(node.args[0], ast.Call)
            ):
                continue
            name = dotted_name(node.args[0].func)
            if name is None or name.split(".")[-1] not in guarded:
                continue
            event = name.split(".")[-1]
            if parents is None:
                parents = ParentMap.build(ctx.tree)
            if not self._wants_guard(node, event, parents):
                yield self.finding(
                    ctx, node,
                    f"hot-path event {event} emitted without a "
                    f"bus.wants({event}) guard; construct opt-in events "
                    "only when someone is listening",
                )

    @staticmethod
    def _wants_guard(
        node: ast.Call, event: str, parents: ParentMap
    ) -> bool:
        for ancestor in parents.ancestors(node):
            if not isinstance(ancestor, ast.If):
                continue
            for sub in ast.walk(ancestor.test):
                if (
                    isinstance(sub, ast.Call)
                    and _call_attr(sub) == "wants"
                    and sub.args
                ):
                    arg = dotted_name(sub.args[0])
                    if arg is not None and arg.split(".")[-1] == event:
                        return True
        return False
