"""RPL001 ``rng-discipline`` — all randomness flows through seeded Generators.

Bit-identical replay (``RunResult.digest``, the 23-point digest-parity
grid) requires every random draw in the simulated world to come from a
``numpy.random.Generator`` that was constructed from an explicit seed
and *threaded through* the code that uses it.  The stdlib ``random``
module and numpy's legacy global state (``np.random.uniform`` & co.)
are process-wide singletons: any import-order change, test reordering
or parallel sweep worker perturbs them silently, and the failure shows
up as an opaque run-level digest mismatch instead of a lint error.

Flagged:

* ``import random`` / ``from random import ...`` (stdlib module);
* calls through numpy's legacy global RNG: ``np.random.<fn>(...)`` for
  any ``fn`` other than ``default_rng`` / ``Generator`` / ``SeedSequence``;
* ``default_rng()`` called with *no* arguments — an OS-entropy seed is
  nondeterminism with extra steps.

Allowed: ``np.random.default_rng(seed)`` construction sites, and any
use of a ``Generator`` instance (``rng.integers(...)`` is invisible to
this rule by design — the discipline is enforced at the *source*).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import FileContext, Finding, Rule, dotted_name, register_rule

#: attributes of ``numpy.random`` that construct or name generator types
#: rather than drawing from the legacy global state
_CONSTRUCTORS = {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}


@register_rule
class RngDisciplineRule(Rule):
    id = "rng-discipline"
    summary = (
        "randomness must flow through seeded np.random.Generator objects; "
        "stdlib random and numpy's legacy global RNG are banned"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        numpy_aliases = {"numpy"}
        random_aliases: set[str] = set()
        for node in ctx.nodes():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        random_aliases.add(alias.asname or alias.name)
                        yield self.finding(
                            ctx, node,
                            "import of stdlib `random` (process-global RNG); "
                            "thread a seeded np.random.Generator instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx, node,
                        "import from stdlib `random` (process-global RNG); "
                        "thread a seeded np.random.Generator instead",
                    )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _CONSTRUCTORS:
                            yield self.finding(
                                ctx, node,
                                f"`from numpy.random import {alias.name}` "
                                "draws from the legacy global RNG; use a "
                                "seeded default_rng(...) Generator",
                            )

        legacy_roots = {f"{a}.random" for a in numpy_aliases}
        for node in ctx.nodes():
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            root, _, fn = dotted.rpartition(".")
            if root in legacy_roots and fn not in _CONSTRUCTORS:
                yield self.finding(
                    ctx, node,
                    f"`{dotted}(...)` draws from numpy's process-global "
                    "legacy RNG; use a seeded, threaded "
                    "np.random.Generator",
                )
            elif fn == "default_rng" or dotted == "default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        "`default_rng()` without a seed pulls OS entropy — "
                        "every construction site must pass an explicit seed",
                    )
