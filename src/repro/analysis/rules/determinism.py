"""``determinism-taint`` — nondeterminism must not *flow* into digests.

The syntactic ``wall-clock`` and ``rng-discipline`` rules ban the calls
themselves, with allowlists for the sanctioned measurement sites.  This
rule closes the remaining hole: an *allowlisted* source is still a
source, and its value must never reach digest-bearing state.  A
``perf_counter()`` read in the planner is legal; that same value
assigned through two temporaries into an ``IterationStats`` field, an
event payload or a replay record is exactly the silent flake the
digest-parity suite exists to prevent — and no per-call allowlist can
see it.

Mechanics (see docs/static-analysis.md, "Dataflow engine"):

* **sources** — wall-clock reads, stdlib ``random``, numpy legacy-RNG
  draws and unseeded ``default_rng()`` (the
  :class:`~repro.analysis.dataflow.taint.SourceDetector` labels, which
  reuse the syntactic rules' own call tables);
* **propagation** — the intraprocedural taint lattice, plus
  interprocedural *return summaries* over the project call graph: a
  helper that returns ``perf_counter() - start`` taints its callers'
  results too, across files;
* **sinks** — construction of the ``sink-types`` classes (default:
  ``IterationStats``, ``RunResult``, ``UnitMeasurement``,
  ``ReplayRecord``, ``CompiledTemplate``) and any ``*.emit(...)``
  payload;
* **the sanctioned hole** — keyword arguments named in ``clean-fields``
  (default: ``planning_time``, the one wall-clock field that
  ``RunResult.digest`` deliberately excludes) neither count as sinks
  nor propagate taint out of the constructed object.
"""

from __future__ import annotations

import ast
from types import SimpleNamespace
from typing import Iterable, Mapping, Optional

from repro.analysis.core import FileContext, Finding, Rule, dotted_name, register_rule
from repro.analysis.dataflow.callgraph import (
    CallGraph,
    FunctionInfo,
    module_name,
)
from repro.analysis.dataflow.cfg import cfg_for_scope, own_exprs, scopes_for, shallow_walk
from repro.analysis.dataflow.lattice import solve_forward, walk_with_env
from repro.analysis.dataflow.taint import (
    EMPTY,
    Taint,
    TaintEngine,
    detector_for,
)

#: default digest-bearing constructors — building one of these with a
#: tainted argument is the error this rule exists for
_SINK_TYPES = (
    "IterationStats",
    "RunResult",
    "UnitMeasurement",
    "ReplayRecord",
    "CompiledTemplate",
)


@register_rule
class DeterminismTaintRule(Rule):
    id = "determinism-taint"
    summary = (
        "wall-clock/unseeded-RNG values must not flow into digest-bearing "
        "state (IterationStats/RunResult/replay records/event payloads)"
    )

    def __init__(self) -> None:
        super().__init__()
        self.sink_types: frozenset[str] = frozenset(_SINK_TYPES)
        self.clean_fields: frozenset[str] = frozenset({"planning_time"})
        self.graph = CallGraph()
        self._contexts: dict[str, FileContext] = {}
        self._summaries: Optional[dict[str, Taint]] = None

    def configure(self, options: Mapping[str, object]) -> None:
        super().configure(options)
        sinks = options.get("sink-types")
        if sinks is not None:
            self.sink_types = frozenset(str(s) for s in sinks)
        clean = options.get("clean-fields")
        if clean is not None:
            self.clean_fields = frozenset(str(c) for c in clean)

    # ------------------------------------------------------------- pass 1

    def collect(self, ctx: FileContext) -> None:
        self.graph.add_file(ctx)
        self._contexts[ctx.relpath] = ctx
        self._summaries = None

    # ---------------------------------------------- interprocedural summaries

    def summaries(self) -> dict[str, Taint]:
        """Return-value taint per function qualname, to fixpoint.

        Seeded only from functions whose own body contains a source
        call, then propagated to callers through reverse call-graph
        edges — functions that can never return taint are never
        analyzed, which is what keeps the self-check bench flat.
        """
        if self._summaries is not None:
            return self._summaries
        self.graph.resolve()
        summaries: dict[str, Taint] = {}
        worklist: list[str] = []
        for info in self.graph.functions.values():
            ctx = self._contexts.get(info.relpath)
            if ctx is None:
                continue
            detector = detector_for(ctx)
            for sub in info.calls:
                if detector.source_for_call(sub):
                    worklist.append(info.qualname)
                    break
        while worklist:
            qualname = worklist.pop()
            info = self.graph.functions[qualname]
            ctx = self._contexts.get(info.relpath)
            if ctx is None:
                continue
            taint = self._return_taint(ctx, info, summaries)
            if taint != summaries.get(qualname, EMPTY):
                summaries[qualname] = taint
                worklist.extend(self.graph.callers_of(qualname))
        self._summaries = summaries
        return summaries

    def _return_taint(
        self, ctx: FileContext, info: FunctionInfo, summaries: dict[str, Taint]
    ) -> Taint:
        engine = self._engine(ctx, info, summaries)
        cfg = cfg_for_scope(ctx, info.node)
        solve_forward(cfg, engine)
        return frozenset(engine.return_taint)

    def _engine(self, ctx: FileContext, caller, summaries) -> TaintEngine:
        def call_summary(call: ast.Call) -> Taint:
            out = EMPTY
            for callee in self.graph.resolve_call(caller, call):
                out |= summaries.get(callee, EMPTY)
            return out

        return TaintEngine(
            detector_for(ctx),
            clean_fields=self.clean_fields,
            call_summary=call_summary,
        )

    # ------------------------------------------------------------- pass 2

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not self._file_has_sinks(ctx):
            return
        summaries = self.summaries()
        module = module_name(ctx.relpath)
        for scope in scopes_for(ctx):
            yield from self._check_scope(ctx, scope, module, summaries)

    def _file_has_sinks(self, ctx: FileContext) -> bool:
        for node in ctx.nodes():
            if isinstance(node, ast.Call) and self._sink_name(node):
                return True
        return False

    def _sink_name(self, call: ast.Call) -> Optional[str]:
        """"IterationStats"/"emit"/... when this call is a sink, else None."""
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "emit"
            and call.args
        ):
            return "emit"
        dotted = dotted_name(call.func)
        if dotted is not None and dotted.split(".")[-1] in self.sink_types:
            return dotted.split(".")[-1]
        return None

    def _check_scope(
        self, ctx: FileContext, scope, module: str, summaries
    ) -> Iterable[Finding]:
        sink_calls = [
            n
            for stmt in scope.body
            for n in shallow_walk(stmt)
            if isinstance(n, ast.Call) and self._sink_name(n)
        ]
        if not sink_calls:
            return
        caller = self.graph.function_for_node(scope)
        if caller is None:
            caller = SimpleNamespace(module=module, cls=None)
        engine = self._engine(ctx, caller, summaries)
        cfg = cfg_for_scope(ctx, scope)
        envs = solve_forward(cfg, engine)
        sink_ids = {id(c) for c in sink_calls}
        for stmt, env in walk_with_env(cfg, engine, envs):
            for expr in own_exprs(stmt):
                for node in shallow_walk(expr):
                    if isinstance(node, ast.Call) and id(node) in sink_ids:
                        yield from self._check_sink(ctx, node, env, engine)

    def _check_sink(
        self, ctx: FileContext, call: ast.Call, env, engine: TaintEngine
    ) -> Iterable[Finding]:
        sink = self._sink_name(call)
        if sink == "emit":
            args = list(call.args)
            target = "event payload"
        else:
            args = list(call.args) + [
                kw.value
                for kw in call.keywords
                if kw.arg is None or kw.arg not in self.clean_fields
            ]
            target = f"{sink}(...)"
        taint: Taint = EMPTY
        for arg in args:
            taint |= engine.eval(arg, env)
        if not taint:
            return
        sources = sorted(
            {s.describe() for s in taint}, key=str
        )
        listed = "; ".join(sources[:3])
        if len(sources) > 3:
            listed += f"; … {len(sources) - 3} more"
        yield self.finding(
            ctx, call,
            f"nondeterministic value flows into {target}: tainted by "
            f"{listed}.  Digest-bearing state must be a pure function of "
            "seeds and the simulated clock (allowlisted sources may "
            "exist, but their values must not escape into digests)",
        )
