"""``lifecycle-protocol`` — only the lifecycle controller fits or resets.

The collect→fit→plan lifecycle has exactly one owner:
:class:`repro.core.lifecycle.LifecycleController`.  Every estimator
(re)fit must run its invalidation protocol (plan cache + replay +
compiled templates flushed together), and every collector reset must go
through the controller's state machine so readiness, drift calibration
and re-collection accounting stay coherent.  A direct
``estimator.fit(...)`` or ``collector.clear(...)`` sprinkled elsewhere
recreates the implicit lifecycle this refactor removed — a fit nobody
tracked, serving cached plans priced off a fit that no longer exists.

The rule matches on the *receiver name*: ``.fit``/``.fit_base`` calls on
a receiver ending in ``estimator`` and ``.clear``/``.evict_oldest``
calls on a receiver containing ``collector``.  Regressor internals
(``tree.fit``) and unrelated ``dict.clear`` calls are untouched.
Sanctioned call sites (the controller itself; the offline Table IV/V
estimator-comparison generators, which never execute plans) are
exempted via ``allow`` globs in ``[tool.replint.rules
.lifecycle-protocol]``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import FileContext, Finding, Rule, dotted_name, register_rule

#: estimator methods that (re)build the fitted state
_FIT_METHODS = {"fit", "fit_base"}
#: collector methods that discard accumulated samples
_RESET_METHODS = {"clear", "evict_oldest"}


@register_rule
class LifecycleProtocolRule(Rule):
    id = "lifecycle-protocol"
    summary = (
        "estimator.fit()/collector.clear() outside the lifecycle "
        "controller bypasses the refit invalidation protocol"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.nodes():
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            root, _, fn = dotted.rpartition(".")
            if not root:
                continue
            receiver = root.split(".")[-1].lower()
            if fn in _FIT_METHODS and receiver.endswith("estimator"):
                yield self.finding(
                    ctx, node,
                    f"direct `{dotted}(...)`: estimator fits belong to "
                    "LifecycleController._refit, which flushes the plan "
                    "cache and the replay/compiled tiers; route this "
                    "through the lifecycle (or allowlist an offline-only "
                    "analysis site)",
                )
            elif fn in _RESET_METHODS and "collector" in receiver:
                yield self.finding(
                    ctx, node,
                    f"direct `{dotted}(...)`: collector resets belong to "
                    "the lifecycle state machine, which re-earns readiness "
                    "and recalibrates the drift monitors; route this "
                    "through the lifecycle (or allowlist an offline-only "
                    "analysis site)",
                )
