"""Built-in replint rules.

Importing this package registers every stock rule with the registry in
:mod:`repro.analysis.core` — the same import-time registration pattern
the execution-strategy registry uses.  Third-party rules register the
same way::

    from repro.analysis import Rule, register_rule

    @register_rule
    class MyRule(Rule):
        id = "my-rule"
        summary = "..."

        def check(self, ctx):
            ...
"""

from repro.analysis.rules.determinism import DeterminismTaintRule
from repro.analysis.rules.eventbus import EventBusProtocolRule
from repro.analysis.rules.guarddominance import GuardDominanceRule
from repro.analysis.rules.invalidation import InvalidationReachabilityRule
from repro.analysis.rules.lifecycle import LifecycleProtocolRule
from repro.analysis.rules.modes import ModeBranchingRule
from repro.analysis.rules.planmembership import PlanMembershipRule
from repro.analysis.rules.rng import RngDisciplineRule
from repro.analysis.rules.units import UnitFlowRule
from repro.analysis.rules.wallclock import WallClockRule

__all__ = [
    "DeterminismTaintRule",
    "EventBusProtocolRule",
    "GuardDominanceRule",
    "InvalidationReachabilityRule",
    "LifecycleProtocolRule",
    "ModeBranchingRule",
    "PlanMembershipRule",
    "RngDisciplineRule",
    "UnitFlowRule",
    "WallClockRule",
]
