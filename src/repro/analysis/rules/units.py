"""``unit-flow`` — inferred physical units must not mix through dataflow.

Every capacity in the simulator is an integer byte count (allocator
blocks, budgets, ``predicted_peak_bytes``); durations are simulated
seconds with millisecond figures at the reporting edges; the
human-facing layers carry GB floats.  The places they meet are explicit
conversion sites (``int(budget_gb * GB)``, ``peak / 1024**3``,
``1e3 * step_time``) — and history says the meeting is where the bugs
live: an un-converted ``budget_gb`` compared against a byte count is
off by 2**30 and *still runs* (Checkmate's artifact shipped exactly
this class of bug in its budget plumbing).

v1 of this rule (``byte-units``) inferred units from identifier
suffixes at the expression itself, so one temporary assignment
laundered the unit away::

    window = step_ms            # window: no suffix -> v1 forgets "ms"
    total = window + alloc_bytes  # v1 silent; this rule: ms + bytes

v2 seeds the same suffix vocabulary (``*_bytes``/``nbytes`` → bytes,
``*_kb``/``*_mb``/``*_gb`` → that unit, ``*_ms`` → ms, ``*_time``/
``*_seconds``/``*_secs``/``*_sec`` → seconds, ``num_*``/``*_count`` →
count) into a per-variable environment — function parameters included —
and propagates it through assignments, tuple unpacking, augmented
assigns and attribute stores on the CFG, so the unit survives any chain
of temporaries.  Multiplying or dividing by a recognized conversion
factor (``GB``/``MB``/``KB`` names, powers of 1024, ``1e3``/``1e6``/
``1e9`` and their inverses) still neutralizes the unit: ``bytes / GB``
is a conversion, not a mix.  Conflicts are additive arithmetic or
comparisons whose sides carry two *different* capacity-or-duration
units; counts never conflict (indices mix with everything).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.core import FileContext, Finding, Rule, dotted_name, register_rule
from repro.analysis.dataflow.cfg import cfg_for_scope, own_exprs, scopes_for, shallow_walk
from repro.analysis.dataflow.lattice import (
    Env,
    ForwardAnalysis,
    Unit,
    join_units,
    solve_forward,
    units_conflict,
    walk_with_env,
)

#: identifier suffix → seeded unit, checked in order (first match wins)
_SUFFIXES: tuple[tuple[str, Unit], ...] = (
    ("_bytes", Unit.BYTES),
    ("nbytes", Unit.BYTES),
    ("_kb", Unit.KB),
    ("_mb", Unit.MB),
    ("_gb", Unit.GB),
    ("_ms", Unit.MS),
    ("_millis", Unit.MS),
    ("_seconds", Unit.SECONDS),
    ("_secs", Unit.SECONDS),
    ("_sec", Unit.SECONDS),
    ("_time", Unit.SECONDS),
    ("_count", Unit.COUNT),
)

#: conversion-factor values: multiplying/dividing by one of these is an
#: explicit unit change, which neutralizes inference for that operand
_FACTOR_VALUES = {
    1024,
    1024**2,
    1024**3,
    1 << 20,
    1 << 30,
    10**3,
    10**6,
    10**9,
    1e3,
    1e6,
    1e9,
    1e-3,
    1e-6,
    1e-9,
    0.001,
}

_PASSTHROUGH_CALLS = {"int", "float", "abs", "round"}
_JOINING_CALLS = {"min", "max", "sum"}


def suffix_unit(ident: str) -> Optional[Unit]:
    """The unit an identifier's spelling promises, if any."""
    lowered = ident.lower()
    if lowered.startswith("num_") or lowered.startswith("n_"):
        return Unit.COUNT
    for suffix, unit in _SUFFIXES:
        if lowered == suffix.lstrip("_") or lowered.endswith(suffix):
            return unit
    return None


class UnitAnalysis(ForwardAnalysis):
    """Forward unit propagation: env maps variable names to units.

    The *environment* wins over the suffix for names it knows — that is
    the laundering detection: once ``window = step_ms`` runs, ``window``
    carries ms no matter how it is spelled.  Unknown names fall back to
    suffix inference, which keeps v1's behaviour as the base case.
    """

    def __init__(
        self,
        conversion_names: tuple[str, ...],
        init_env: Optional[Env] = None,
    ) -> None:
        self.conversion_names = conversion_names
        self._init_env: Env = dict(init_env or {})

    def initial_env(self) -> Env:
        return dict(self._init_env)

    # -------------------------------------------------------------- lattice

    def join_values(self, a: Unit, b: Unit) -> Optional[Unit]:
        return join_units(a, b)

    # ----------------------------------------------------------- inference

    def _identifier(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def _is_factor(self, node: ast.AST) -> bool:
        ident = self._identifier(node)
        if ident is not None and ident in self.conversion_names:
            return True
        if isinstance(node, ast.Constant) and isinstance(
            node.value, (int, float)
        ):
            return node.value in _FACTOR_VALUES
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, (ast.Pow, ast.LShift))
            and isinstance(node.left, ast.Constant)
            and node.left.value in (2, 1024, 10)
        ):
            return True
        return False

    def unit_of(self, node: ast.AST, env: Env) -> Optional[Unit]:
        """Best-effort unit of an expression under ``env``."""
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = dotted_name(node)
            if dotted is not None and dotted in env:
                return env[dotted]
            ident = self._identifier(node)
            if ident is None:
                return None
            if ident in self.conversion_names:
                return Unit.BYTES  # GB/MB/... constants *are* byte counts
            return suffix_unit(ident)
        if isinstance(node, ast.Call):
            fn = self._identifier(node.func)
            if fn in _PASSTHROUGH_CALLS and len(node.args) == 1:
                return self.unit_of(node.args[0], env)
            if fn in _JOINING_CALLS and node.args:
                units = {self.unit_of(a, env) for a in node.args}
                units.discard(None)
                return units.pop() if len(units) == 1 else None
            if fn == "len":
                return Unit.COUNT
            # a function's name promises its return unit the same way a
            # variable's does (transfer_time -> seconds)
            return suffix_unit(fn) if fn else None
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Mult, ast.Div, ast.FloorDiv)):
                if self._is_factor(node.left) or self._is_factor(node.right):
                    return None  # explicit conversion neutralizes the unit
                left = self.unit_of(node.left, env)
                right = self.unit_of(node.right, env)
                # counts are dimensionless multipliers: n * elem_bytes
                # is still bytes; bytes / n is still bytes
                if left is Unit.COUNT:
                    return right if isinstance(node.op, ast.Mult) else None
                if right is Unit.COUNT:
                    return left
                if left and right:
                    return None  # bytes*bytes etc.: not a capacity anymore
                return left or right
            if isinstance(node.op, (ast.Add, ast.Sub)):
                left = self.unit_of(node.left, env)
                right = self.unit_of(node.right, env)
                if left is right:
                    return left
                return None
            return None
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand, env)
        if isinstance(node, ast.IfExp):
            return join_units(
                self.unit_of(node.body, env), self.unit_of(node.orelse, env)
            )
        if isinstance(node, ast.NamedExpr):
            unit = self.unit_of(node.value, env)
            if isinstance(node.target, ast.Name):
                self._set(node.target.id, unit, env)
            return unit
        if isinstance(node, ast.Starred):
            return self.unit_of(node.value, env)
        return None

    # ------------------------------------------------------------ transfer

    def _set(self, key: str, unit: Optional[Unit], env: Env) -> None:
        if unit is None:
            env.pop(key, None)
        else:
            env[key] = unit

    def _assign(
        self,
        target: ast.expr,
        value: Optional[ast.expr],
        unit: Optional[Unit],
        env: Env,
    ) -> None:
        if isinstance(target, (ast.Name, ast.Attribute)):
            dotted = dotted_name(target)
            if dotted is not None:
                self._set(dotted, unit, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = None
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                elts = value.elts
            for i, sub in enumerate(target.elts):
                sub_unit = self.unit_of(elts[i], env) if elts else None
                if isinstance(sub, ast.Starred):
                    sub = sub.value
                self._assign(sub, None, sub_unit, env)

    def transfer_stmt(self, stmt: ast.stmt, env: Env) -> None:
        if isinstance(stmt, ast.Assign):
            unit = self.unit_of(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, stmt.value, unit, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(
                stmt.target, stmt.value, self.unit_of(stmt.value, env), env
            )
        elif isinstance(stmt, ast.AugAssign):
            # += keeps the stronger of the two operands' units
            unit = join_units(
                self.unit_of(stmt.target, env), self.unit_of(stmt.value, env)
            ) or self.unit_of(stmt.target, env) or self.unit_of(stmt.value, env)
            self._assign(stmt.target, None, unit, env)

    def transfer_terminator(self, stmt: ast.stmt, env: Env) -> None:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            # iterating a collection of X-unit values is not itself
            # unit-bearing knowledge; clear stale bindings of the target
            self._assign(stmt.target, None, None, env)

    def seed_params(self, scope: ast.AST, env: Env) -> None:
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        a = scope.args
        for arg in (*a.posonlyargs, *a.args, *a.kwonlyargs):
            unit = suffix_unit(arg.arg)
            if unit is not None:
                env[arg.arg] = unit


@register_rule
class UnitFlowRule(Rule):
    id = "unit-flow"
    summary = (
        "dataflow-inferred units (bytes/KB/MB/GB/s/ms) must not mix in "
        "additive arithmetic or comparisons, even through temporaries"
    )

    def __init__(self) -> None:
        super().__init__()
        #: names that are conversion constants (an operand scaled by one
        #: of these is considered explicitly converted)
        self.conversion_names: tuple[str, ...] = (
            "KB", "MB", "GB", "KIB", "MIB", "GIB", "_KB", "_MB", "_GB",
        )

    def configure(self, options) -> None:
        super().configure(options)
        names = options.get("conversion-names")
        if names is not None:
            self.conversion_names = tuple(str(n) for n in names)

    # -------------------------------------------------------------- check

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if len(self._possible_units(ctx)) < 2:
            return
        for scope in scopes_for(ctx):
            yield from self._check_scope(ctx, scope)

    def _possible_units(self, ctx: FileContext) -> set[Unit]:
        """Every dimensional unit any identifier in the file could seed.

        Units are only ever *born* from identifier spellings (suffixes,
        conversion-constant names); a conflict needs two different
        dimensional units, so files whose vocabulary cannot produce two
        are skipped before any CFG or fixpoint work.
        """
        units: set[Unit] = set()
        for node in ctx.nodes():
            if isinstance(node, ast.Name):
                ident = node.id
            elif isinstance(node, ast.Attribute):
                ident = node.attr
            elif isinstance(node, ast.arg):
                ident = node.arg
            else:
                continue
            if ident in self.conversion_names:
                units.add(Unit.BYTES)
                continue
            unit = suffix_unit(ident)
            if unit is not None and unit is not Unit.COUNT:
                units.add(unit)
                if len(units) > 1:
                    break
        return units

    def _check_scope(self, ctx, scope):
        cfg = cfg_for_scope(ctx, scope)
        init: Env = {}
        probe = UnitAnalysis(self.conversion_names)
        probe.seed_params(scope, init)
        analysis = UnitAnalysis(self.conversion_names, init_env=init)
        envs = solve_forward(cfg, analysis)
        seen: set[int] = set()
        for stmt, env in walk_with_env(cfg, analysis, envs):
            for expr in own_exprs(stmt):
                for node in shallow_walk(expr):
                    if id(node) in seen:
                        continue
                    seen.add(id(node))
                    yield from self._check_expr(ctx, node, env, analysis)

    def _check_expr(self, ctx, node, env: Env, analysis: UnitAnalysis):
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            left = analysis.unit_of(node.left, env)
            right = analysis.unit_of(node.right, env)
            if units_conflict(left, right):
                yield self.finding(
                    ctx, node,
                    f"arithmetic mixes {left} and {right} operands "
                    "without an explicit conversion (multiply/divide by "
                    "GB/MB/KB or 1e3 first)",
                )
        elif isinstance(node, ast.Compare) and all(
            isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq))
            for op in node.ops
        ):
            sides = [node.left, *node.comparators]
            units = [analysis.unit_of(s, env) for s in sides]
            for a in units:
                for b in units:
                    if units_conflict(a, b):
                        known = sorted(str(u) for u in units if u is not None)
                        yield self.finding(
                            ctx, node,
                            f"comparison mixes units {known} without an "
                            "explicit conversion; convert both sides to "
                            "one unit first",
                        )
                        return
