"""RPL005 ``byte-units`` — no arithmetic that mixes bytes with MB/GB names.

Every capacity in the simulator is an integer byte count (allocator
blocks, budgets, ``predicted_peak_bytes``); the human-facing layers
(CLI ``--budget-gb``, figures, tables) carry GB floats.  The two meet
at explicit conversion sites (``int(budget_gb * GB)``,
``peak / 1024**3``), and history says the meeting is where the bugs
live — an un-converted ``budget_gb`` compared against a byte count is
off by 2**30 and *still runs*, producing plans that look plausible at
small scales (Checkmate's artifact shipped exactly this class of bug in
its budget plumbing).

The rule infers a unit from identifier suffixes (``*_bytes``/``nbytes``
→ bytes, ``*_kb``/``*_mb``/``*_gb`` → that unit) and flags ``+``/``-``
arithmetic and comparisons whose operands disagree, unless a recognized
conversion appears in the operand (multiplying or dividing by ``GB``,
``MB``, ``KB``, ``_MB`` & co. or a power-of-1024 literal neutralizes
the unit).  Products like ``2 * budget_bytes`` keep their unit;
``bytes / GB`` is a conversion, not a mix.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.core import FileContext, Finding, Rule, register_rule

_SUFFIXES = (
    ("_bytes", "bytes"),
    ("nbytes", "bytes"),
    ("_kb", "KB"),
    ("_mb", "MB"),
    ("_gb", "GB"),
)

#: conversion-factor values: multiplying/dividing by one of these is an
#: explicit unit change, which neutralizes inference for that operand
_FACTOR_VALUES = {
    1024,
    1024**2,
    1024**3,
    1 << 20,
    1 << 30,
    10**6,
    10**9,
    1e6,
    1e9,
}

_PASSTHROUGH_CALLS = {"int", "float", "abs", "round"}


@register_rule
class ByteUnitsRule(Rule):
    id = "byte-units"
    summary = (
        "additive arithmetic/comparisons must not mix *_bytes values with "
        "*_mb/*_gb values without an explicit conversion"
    )

    def __init__(self) -> None:
        super().__init__()
        #: names that are conversion constants (an operand scaled by one
        #: of these is considered explicitly converted)
        self.conversion_names: tuple[str, ...] = (
            "KB", "MB", "GB", "KIB", "MIB", "GIB", "_KB", "_MB", "_GB",
        )

    def configure(self, options) -> None:
        super().configure(options)
        names = options.get("conversion-names")
        if names is not None:
            self.conversion_names = tuple(str(n) for n in names)

    # -------------------------------------------------------------- infer

    def _identifier(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def _suffix_unit(self, ident: str) -> Optional[str]:
        lowered = ident.lower()
        for suffix, unit in _SUFFIXES:
            if lowered == suffix.lstrip("_") or lowered.endswith(suffix):
                return unit
        return None

    def _is_factor(self, node: ast.AST) -> bool:
        ident = self._identifier(node)
        if ident is not None and ident in self.conversion_names:
            return True
        if isinstance(node, ast.Constant) and isinstance(
            node.value, (int, float)
        ):
            return node.value in _FACTOR_VALUES
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, (ast.Pow, ast.LShift))
            and isinstance(node.left, ast.Constant)
            and node.left.value in (2, 1024, 10)
        ):
            return True
        return False

    def _unit_of(self, node: ast.AST) -> Optional[str]:
        """Best-effort unit of an expression, or None when unknown."""
        ident = self._identifier(node)
        if ident is not None:
            if ident in self.conversion_names:
                return "bytes"  # GB/MB/... constants *are* byte counts
            return self._suffix_unit(ident)
        if isinstance(node, ast.Call):
            fn = self._identifier(node.func)
            if fn in _PASSTHROUGH_CALLS and len(node.args) == 1:
                return self._unit_of(node.args[0])
            if fn in ("min", "max", "sum") and node.args:
                units = {self._unit_of(a) for a in node.args}
                units.discard(None)
                return units.pop() if len(units) == 1 else None
            return None
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Mult, ast.Div, ast.FloorDiv)):
                # an explicit conversion factor neutralizes the unit
                if self._is_factor(node.left) or self._is_factor(node.right):
                    return None
                left = self._unit_of(node.left)
                right = self._unit_of(node.right)
                if left and right:
                    return None  # bytes*bytes etc.: not a capacity anymore
                return left or right
            if isinstance(node.op, (ast.Add, ast.Sub)):
                left = self._unit_of(node.left)
                right = self._unit_of(node.right)
                if left == right:
                    return left
                return None
        if isinstance(node, ast.UnaryOp):
            return self._unit_of(node.operand)
        return None

    # -------------------------------------------------------------- check

    def _mixed(self, units: list[Optional[str]]) -> bool:
        known = {u for u in units if u is not None}
        return "bytes" in known and len(known) > 1

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                units = [self._unit_of(node.left), self._unit_of(node.right)]
                if self._mixed(units):
                    yield self.finding(
                        ctx, node,
                        f"arithmetic mixes {units[0]} and {units[1]} "
                        "operands without an explicit conversion "
                        "(multiply/divide by GB/MB/KB first)",
                    )
            elif isinstance(node, ast.Compare) and all(
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq))
                for op in node.ops
            ):
                sides = [node.left, *node.comparators]
                units = [self._unit_of(s) for s in sides]
                if self._mixed(units):
                    known = sorted(u for u in units if u is not None)
                    yield self.finding(
                        ctx, node,
                        f"comparison mixes units {known} without an "
                        "explicit conversion; convert both sides to bytes",
                    )
