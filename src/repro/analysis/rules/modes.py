"""RPL003 ``mode-branching`` — execution-mode dispatch stays in the registry.

The whole point of the strategy refactor (docs/architecture.md) is that
``PlanDecision.mode`` selects behaviour through *one* indirection —
``strategy_for(decision)`` — so a new execution mode is a registered
class, not a grep for every ``if mode == ...`` in the tree.  Any mode
comparison outside ``engine/strategies.py`` quietly reintroduces the
monolithic executor this repo just removed, and is exactly the code a
new ``register_strategy`` backend cannot reach.

Flagged:

* comparisons (``==``/``!=``/``is``/``in``) where either side references
  ``ExecutionMode.<MEMBER>``, and ``match`` statements whose cases
  pattern-match ``ExecutionMode`` members;
* comparisons of a ``mode`` name/attribute against the mode *string*
  values (``"normal"``/``"collect"``/``"reactive"``) — stats rows carry
  ``mode`` as a string, and string-branching is the same architectural
  leak with the enum laundered out.

Not flagged: constructing decisions (``PlanDecision(mode=ExecutionMode
.COLLECT)``), registry subscripts (``_STRATEGIES[decision.mode]``), and
reading ``mode.value``.  ``IterationStats.is_collect`` is the sanctioned
presentation helper — its home (``engine/stats.py``) is allowlisted in
``[tool.replint.rules.mode-branching]``; consumers use the property.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import FileContext, Finding, Rule, dotted_name, register_rule


def _references_execution_mode(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        dotted = dotted_name(sub)
        if dotted is not None and (
            dotted == "ExecutionMode" or ".ExecutionMode" in f".{dotted}"
        ):
            return True
    return False


def _is_mode_expr(node: ast.AST) -> bool:
    """Whether this expression names a ``mode`` (``stats.mode``, ``mode``)."""
    if isinstance(node, ast.Attribute):
        return node.attr == "mode" or node.attr.endswith("_mode")
    if isinstance(node, ast.Name):
        return node.id == "mode" or node.id.endswith("_mode")
    return False


@register_rule
class ModeBranchingRule(Rule):
    id = "mode-branching"
    summary = (
        "ExecutionMode comparisons/match statements are banned outside the "
        "strategy registry; dispatch via register_strategy instead"
    )

    def __init__(self) -> None:
        super().__init__()
        #: string values of the enum members (kept in config so a new
        #: mode's value extends the rule without a code change)
        self.mode_strings: tuple[str, ...] = ("normal", "collect", "reactive")

    def configure(self, options) -> None:
        super().configure(options)
        strings = options.get("mode-strings")
        if strings is not None:
            self.mode_strings = tuple(str(s) for s in strings)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.nodes():
            if isinstance(node, ast.Compare):
                sides = [node.left, *node.comparators]
                if any(_references_execution_mode(s) for s in sides):
                    yield self.finding(
                        ctx, node,
                        "comparison against ExecutionMode outside the "
                        "strategy registry; dispatch belongs in a "
                        "@register_strategy class (strategy_for picks it)",
                    )
                    continue
                if any(_is_mode_expr(s) for s in sides) and any(
                    isinstance(s, ast.Constant) and s.value in self.mode_strings
                    for s in sides
                ):
                    yield self.finding(
                        ctx, node,
                        "string comparison against an execution-mode value; "
                        "use the sanctioned stats helper (e.g. "
                        "IterationStats.is_collect) or a strategy",
                    )
            elif isinstance(node, ast.Match):
                for case in node.cases:
                    if _references_execution_mode(case.pattern):
                        yield self.finding(
                            ctx, case.pattern,
                            "match on ExecutionMode outside the strategy "
                            "registry; register a strategy class instead",
                        )
