"""RPL006 ``plan-membership`` — plan interpretation goes through actions.

The action-layer refactor made :meth:`~repro.planners.base
.ActionAssignment.action_for` the single interpretation point for a
checkpoint plan: one lookup answers "what happens to this unit" for
every action at once.  Code that instead probes the derived legacy sets
(``unit in plan.checkpoint_units``, ``unit in plan.swap_units``)
re-derives a frozenset per probe and — worse — resurrects the
three-independent-sets reading of a plan, where a new
:class:`~repro.planners.base.MemoryAction` silently falls through every
membership test that was written before it existed.

Flagged: ``in``/``not in`` tests whose right-hand side reads a
``checkpoint_units``/``swap_units``/``segment_units`` attribute.

Not flagged: reading the sets wholesale (iteration, ``len``, set
algebra) — the sets remain the right vocabulary for *constructing*
assignments and for reporting; only per-unit membership probing is the
anti-pattern.  Planners build plans and strategies execute them, so
``planners/`` and ``engine/strategies.py`` are allowlisted in
``[tool.replint.rules.plan-membership]``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import FileContext, Finding, Rule, register_rule

_UNIT_SET_ATTRS = ("checkpoint_units", "swap_units", "segment_units")


def _reads_unit_set(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in _UNIT_SET_ATTRS:
            return True
    return False


@register_rule
class PlanMembershipRule(Rule):
    id = "plan-membership"
    summary = (
        "per-unit membership tests against plan.checkpoint_units/swap_units "
        "are banned outside planners and strategies; ask "
        "assignment.action_for(unit) instead"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.nodes():
            if not isinstance(node, ast.Compare):
                continue
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.In, ast.NotIn)) and _reads_unit_set(
                    comparator
                ):
                    yield self.finding(
                        ctx, node,
                        "membership test against a derived plan unit set; "
                        "interpret the plan through "
                        "assignment.action_for(unit) so every MemoryAction "
                        "is handled in one place",
                    )
                    break
