"""``guard-dominance`` — ``bus.wants(T)`` must *dominate* hot-path emits.

The digest-parity suite asserts that attaching observers changes
nothing, which requires that the opt-in per-tensor events listed in
``guarded-events`` are never even constructed when nobody subscribed
(``EventBus.wants``) — otherwise observer presence shifts the
allocation profile of a run.  v1 of this check (inside the event-bus
rule) was lexical: it accepted any ``emit`` with an ``if …wants(T)``
*ancestor*, which a refactor defeats trivially::

    checked = bus.wants(TensorAlloc)
    if tensor.large or checked:      # looks guarded, is not
        bus.emit(TensorAlloc(...))

v2 asks the control-flow graph instead: some dominator of the emit's
basic block must branch on a test that *implies* ``wants(T)`` along the
edge leading to the emit.  Because branch arms are fresh blocks with a
single predecessor, "the true-successor dominates the emit" is exactly
"every path from the entry to the emit takes the true edge" — edge
domination, with no path enumeration.  Polarity is handled through the
test's boolean structure: ``if bus.wants(T):`` guards its true edge,
``if not bus.wants(T): return`` guards its false edge, and ``and``/
``or`` conjuncts guard whichever edges logically pin them
(``wants(T) and x`` guards true; ``not wants(T) or y`` guards false).
"""

from __future__ import annotations

import ast
from typing import Iterable, Mapping

from repro.analysis.core import FileContext, Finding, Rule, dotted_name, register_rule
from repro.analysis.dataflow.cfg import (
    cfg_for_scope,
    dominators,
    scopes_for,
    shallow_walk,
)


def _call_attr(node: ast.Call) -> str:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


def _is_wants(node: ast.AST, event: str) -> bool:
    if not (
        isinstance(node, ast.Call)
        and _call_attr(node) == "wants"
        and node.args
    ):
        return False
    arg = dotted_name(node.args[0])
    return arg is not None and arg.split(".")[-1] == event


def guards_true(test: ast.expr, event: str) -> bool:
    """Does the *true* edge of this test guarantee ``wants(event)``?"""
    if _is_wants(test, event):
        return True
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return guards_false(test.operand, event)
    if isinstance(test, ast.BoolOp):
        if isinstance(test.op, ast.And):
            # true edge: every conjunct held, so any guarding one suffices
            return any(guards_true(v, event) for v in test.values)
        # true edge of `or`: only some disjunct held — all must guard
        return all(guards_true(v, event) for v in test.values)
    return False


def guards_false(test: ast.expr, event: str) -> bool:
    """Does the *false* edge of this test guarantee ``wants(event)``?"""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return guards_true(test.operand, event)
    if isinstance(test, ast.BoolOp):
        if isinstance(test.op, ast.Or):
            # false edge: every disjunct failed, so any guarding one suffices
            return any(guards_false(v, event) for v in test.values)
        # false edge of `and`: only some conjunct failed — all must guard
        return all(guards_false(v, event) for v in test.values)
    return False


@register_rule
class GuardDominanceRule(Rule):
    id = "guard-dominance"
    summary = (
        "hot-path event emits must be dominated by a bus.wants(T) branch "
        "on the CFG, not merely sit near one lexically"
    )

    def __init__(self) -> None:
        super().__init__()
        self.guarded_events: tuple[str, ...] = (
            "TensorAlloc",
            "SwapIn",
            "ReplayHit",
            "CompiledHit",
        )

    def configure(self, options: Mapping[str, object]) -> None:
        super().configure(options)
        guarded = options.get("guarded-events")
        if guarded is not None:
            self.guarded_events = tuple(str(g) for g in guarded)

    # -------------------------------------------------------------- check

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        guarded = set(self.guarded_events)
        if not guarded:
            return
        # files with no `.emit(...)` at all skip every per-scope walk
        if not any(
            isinstance(n, ast.Call) and _call_attr(n) == "emit"
            for n in ctx.nodes()
        ):
            return
        for scope in scopes_for(ctx):
            emits = self._guarded_emits(scope, guarded)
            if not emits:
                continue
            cfg = cfg_for_scope(ctx, scope)
            dom = dominators(cfg)
            blocks = {b.id: b for b in cfg.reachable()}
            for call, event in emits:
                block = cfg.block_of(call)
                if block is None:
                    continue  # dead code — nothing ever pays for it
                if not self._dominated(block, event, dom, blocks):
                    yield self.finding(
                        ctx, call,
                        f"hot-path event {event} emitted without a "
                        f"dominating bus.wants({event}) guard; every path "
                        "to this emit must first check that someone is "
                        "listening",
                    )

    def _guarded_emits(self, scope, guarded: set[str]):
        out = []
        body = scope.body if hasattr(scope, "body") else []
        for stmt in body:
            for node in shallow_walk(stmt):
                if not (
                    isinstance(node, ast.Call)
                    and _call_attr(node) == "emit"
                    and node.args
                    and isinstance(node.args[0], ast.Call)
                ):
                    continue
                name = dotted_name(node.args[0].func)
                if name is None:
                    continue
                event = name.split(".")[-1]
                if event in guarded:
                    out.append((node, event))
        return out

    @staticmethod
    def _dominated(block, event: str, dom, blocks) -> bool:
        my_doms = dom.get(block.id, frozenset())
        for dom_id in my_doms:
            guard = blocks.get(dom_id)
            if guard is None or guard.terminator is None:
                continue
            term = guard.terminator
            if isinstance(term, (ast.If, ast.While, ast.Assert)):
                test = term.test
            else:
                continue
            for succ, label in guard.succs:
                if succ.id not in my_doms:
                    continue
                if label == "true" and guards_true(test, event):
                    return True
                if label == "false" and guards_false(test, event):
                    return True
        return False
