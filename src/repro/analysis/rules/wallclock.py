"""RPL002 ``wall-clock`` — host time never reaches the simulated world.

Everything that feeds ``RunResult.digest`` must be a pure function of
the seeds and the simulated :class:`~repro.tensorsim.clock.SimClock`;
the digest deliberately *excludes* wall-clock ``planning_time`` so that
goldens survive machine-speed changes (see docs/architecture.md,
"Invariants the pipeline preserves").  A stray ``time.time()`` or
``perf_counter()`` anywhere else leaks host timing into simulated
state and breaks replay/digest parity only on machines fast or slow
enough to notice — the worst kind of flake.

The sanctioned measurement sites (the estimator's fit/predict latency
and the planner's ``planning_time`` stopwatch, which are *genuine*
planner costs on the real system's critical path) are exempted through
the rule's ``allow`` path globs in ``[tool.replint.rules.wall-clock]``,
so a new wall-clock read anywhere else is an error until it is either
moved behind the clock or explicitly allowlisted in review.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import FileContext, Finding, Rule, dotted_name, register_rule

#: functions of the stdlib ``time`` module that read host time
_TIME_FNS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "clock_gettime",
    "localtime",
    "gmtime",
}
#: ``datetime`` constructors that read host time
_DATETIME_FNS = {"now", "utcnow", "today"}


@register_rule
class WallClockRule(Rule):
    id = "wall-clock"
    summary = (
        "host wall-clock reads (time.time/perf_counter/datetime.now) are "
        "banned outside the allowlisted planner-overhead stopwatch sites"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        time_aliases = {"time"}
        from_imports: set[str] = set()
        for node in ctx.nodes():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _TIME_FNS:
                        from_imports.add(alias.asname or alias.name)

        for node in ctx.nodes():
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            root, _, fn = dotted.rpartition(".")
            if (root in time_aliases and fn in _TIME_FNS) or (
                not root and fn in from_imports
            ):
                yield self.finding(
                    ctx, node,
                    f"wall-clock read `{dotted}(...)`: host time must not "
                    "reach digest-bearing state; use the simulated clock, "
                    "or allowlist this file if it measures genuine planner "
                    "overhead",
                )
            elif fn in _DATETIME_FNS and root.split(".")[-1] in (
                "datetime",
                "date",
            ):
                yield self.finding(
                    ctx, node,
                    f"wall-clock read `{dotted}(...)`: host time must not "
                    "reach digest-bearing state",
                )
