"""``invalidation-reachability`` — every refit path reaches the flush.

The lifecycle protocol (:mod:`repro.core.lifecycle`) is: whenever an
estimator is (re)fitted, the plan cache and the replay/compiled tiers
must be flushed *on the same path*, because every cached plan, replay
record and compiled template was priced off the old fit.  The syntactic
``lifecycle-protocol`` rule pins *where* fits may happen; this rule
checks the protocol itself: from any function that performs an
estimator fit, some call path must reach an invalidation site — a
``.clear()``/``.flush()``/``.invalidate()`` on a cache-like receiver,
or a call to a function whose name says invalidate/flush.  A refit
helper that forgets the flush (the exact mutation the test suite
injects into a copy of ``lifecycle.py``) is flagged at the fit call.

Reachability runs over the project-wide call graph from the collect
pass, so the fit and the flush may live in different functions or
files; unresolvable (dynamic) calls contribute no edges, and the rule
only ever *misses* flushes it cannot see — the failure mode is a
false positive asking for an explicit flush, never a silent pass on a
missing one.

Offline analysis code that fits throwaway estimators and never serves
plans (the Table IV/V generators) is exempted via ``allow`` globs, the
same entries the syntactic rule uses.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.core import FileContext, Finding, Rule, dotted_name, register_rule
from repro.analysis.dataflow.callgraph import CallGraph

#: estimator methods that (re)build the fitted state — shared vocabulary
#: with the syntactic lifecycle-protocol rule
_FIT_METHODS = {"fit", "fit_base"}
#: method names that flush cached, fit-priced state
_FLUSH_METHODS = {"clear", "flush", "invalidate", "evict_all", "reset"}
#: receiver-name fragments identifying fit-priced caches
_CACHE_RECEIVERS = ("cache", "replay", "compiled", "template")
#: bare/attribute callee-name fragments that *are* the invalidation
_FLUSH_NAME_FRAGMENTS = ("invalidate", "flush")


def _is_fit_call(node: ast.Call) -> bool:
    dotted = dotted_name(node.func)
    if dotted is None:
        return False
    root, _, fn = dotted.rpartition(".")
    if not root:
        return False
    receiver = root.split(".")[-1].lower()
    return fn in _FIT_METHODS and receiver.endswith("estimator")


def _is_flush_call(node: ast.Call) -> bool:
    dotted = dotted_name(node.func)
    if dotted is None:
        return False
    root, _, fn = dotted.rpartition(".")
    if any(frag in fn.lower() for frag in _FLUSH_NAME_FRAGMENTS):
        return True
    if root and fn in _FLUSH_METHODS:
        receiver = root.split(".")[-1].lower()
        return any(frag in receiver for frag in _CACHE_RECEIVERS)
    return False


@register_rule
class InvalidationReachabilityRule(Rule):
    id = "invalidation-reachability"
    summary = (
        "every call path performing an estimator refit must reach a "
        "plan-cache/replay/compiled flush (the lifecycle protocol)"
    )

    def __init__(self) -> None:
        super().__init__()
        self.graph = CallGraph()
        self._flush_cache: Optional[set[str]] = None

    # ------------------------------------------------------------- pass 1

    def collect(self, ctx: FileContext) -> None:
        self.graph.add_file(ctx)
        self._flush_cache = None

    # ------------------------------------------------------------- pass 2

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        flush_functions = self._flush_functions()
        for info in self.graph.functions.values():
            if info.relpath != ctx.relpath:
                continue
            fits = [sub for sub in info.calls if _is_fit_call(sub)]
            if not fits:
                continue
            reachable = self.graph.reachable_from([info.qualname])
            if reachable & flush_functions:
                continue
            for call in fits:
                yield self.finding(
                    ctx, call,
                    f"estimator refit in `{info.qualname.split(':')[-1]}` "
                    "reaches no plan-cache/replay/compiled flush on any "
                    "call path; the lifecycle protocol requires every fit "
                    "to invalidate state priced off the previous fit "
                    "(see core/lifecycle.py)",
                )

    def _flush_functions(self) -> set[str]:
        """Qualnames of functions that *directly* contain a flush call."""
        if self._flush_cache is not None:
            return self._flush_cache
        out: set[str] = set()
        for info in self.graph.functions.values():
            for sub in info.calls:
                if _is_flush_call(sub):
                    out.add(info.qualname)
                    break
        self._flush_cache = out
        return out
