"""Generic forward dataflow solving plus the unit lattice.

:func:`solve_forward` runs any :class:`ForwardAnalysis` to fixpoint over
a :class:`~repro.analysis.dataflow.cfg.CFG`.  Environments are plain
``dict[str, value]`` maps from variable names (dotted attribute paths
included, e.g. ``self._planning``) to abstract values; an absent key is
the lattice bottom.  Termination holds for any analysis whose
``join_values`` is monotone over a finite-height lattice — the two
shipped instances qualify (taint label sets are bounded by the labels
occurring in one scope; the unit lattice has height 2).

The unit lattice itself (:class:`Unit`, :func:`join_units`) lives here
rather than in the unit rule so tests and future rules can reuse it:
``UNKNOWN`` is bottom, the concrete units are pairwise incomparable, and
joining two different concrete units falls back to ``UNKNOWN`` — a
variable that holds bytes on one branch and milliseconds on the other
is not *known* to be either, and the mixing itself is reported at the
expression that merged them, not at the join point.
"""

from __future__ import annotations

import enum
from typing import Callable, Generic, Iterator, Optional, TypeVar

from repro.analysis.dataflow.cfg import CFG, Block

V = TypeVar("V")
Env = dict  # dict[str, V]


class ForwardAnalysis(Generic[V]):
    """One forward dataflow problem: transfer functions plus value join."""

    def initial_env(self) -> Env:
        return {}

    def join_values(self, a: V, b: V) -> Optional[V]:
        """Join two abstract values; returning None drops the key
        (i.e. the join is bottom)."""
        raise NotImplementedError

    def transfer_stmt(self, stmt, env: Env) -> None:
        """Apply one simple statement's effect to ``env`` in place."""
        raise NotImplementedError

    def transfer_terminator(self, stmt, env: Env) -> None:
        """Apply a terminator's effect (loop targets, walrus in tests).
        Default: nothing."""

    # ------------------------------------------------------------- driving

    def transfer_block(self, block: Block, env: Env) -> Env:
        out = dict(env)
        for stmt in block.stmts:
            self.transfer_stmt(stmt, out)
        if block.terminator is not None:
            self.transfer_terminator(block.terminator, out)
        return out

    def join_envs(self, into: Env, other: Env) -> bool:
        """Join ``other`` into ``into``; True when ``into`` changed."""
        changed = False
        for key, value in other.items():
            if key not in into:
                into[key] = value
                changed = True
                continue
            joined = self.join_values(into[key], value)
            if joined is None:
                if key in into:
                    del into[key]
                    changed = True
            elif joined != into[key]:
                into[key] = joined
                changed = True
        return changed


def solve_forward(
    cfg: CFG, analysis: ForwardAnalysis, max_passes: int = 64
) -> dict[int, Env]:
    """Entry environment per reachable block id, at fixpoint.

    ``max_passes`` is a defensive bound (a correct monotone analysis
    converges in O(lattice height × blocks); 64 sweeps is far beyond
    any real scope) so a buggy custom analysis degrades to imprecision
    instead of hanging the linter.
    """
    order = cfg.rpo()
    entry_env: dict[int, Env] = {b.id: {} for b in order}
    entry_env[cfg.entry.id] = analysis.initial_env()
    reach = {b.id for b in order}
    for _ in range(max_passes):
        changed = False
        for block in order:
            out = analysis.transfer_block(block, entry_env[block.id])
            for succ, _label in block.succs:
                if succ.id not in reach:
                    continue
                if analysis.join_envs(entry_env[succ.id], out):
                    changed = True
        if not changed:
            break
    return entry_env


def walk_with_env(
    cfg: CFG, analysis: ForwardAnalysis, entry_env: dict[int, Env]
) -> Iterator[tuple[object, Env]]:
    """Yield every (statement, in-env) pair of the solved CFG.

    The env each statement sees is the fixpoint environment at that
    program point — what check passes consume to evaluate expressions.
    Terminators are yielded too (their tests are expressions).
    """
    for block in cfg.rpo():
        env = dict(entry_env[block.id])
        for stmt in block.stmts:
            yield stmt, env
            analysis.transfer_stmt(stmt, env)
        if block.terminator is not None:
            yield block.terminator, env
            analysis.transfer_terminator(block.terminator, env)


# ---------------------------------------------------------------------------
# The unit lattice
# ---------------------------------------------------------------------------


class Unit(enum.Enum):
    """Physical units a value can carry in this codebase."""

    BYTES = "bytes"
    KB = "KB"
    MB = "MB"
    GB = "GB"
    SECONDS = "s"
    MS = "ms"
    COUNT = "count"

    def __str__(self) -> str:  # pragma: no cover - messages only
        return self.value


#: units measuring memory capacity — any two distinct members mixed in
#: additive arithmetic are off by powers of 1024
MEMORY_UNITS = frozenset({Unit.BYTES, Unit.KB, Unit.MB, Unit.GB})
#: units measuring duration — seconds vs milliseconds mix is off by 1e3
TIME_UNITS = frozenset({Unit.SECONDS, Unit.MS})


def join_units(a: Optional[Unit], b: Optional[Unit]) -> Optional[Unit]:
    """Lattice join: equal units survive, anything else is unknown."""
    if a is b:
        return a
    return None


def units_conflict(a: Optional[Unit], b: Optional[Unit]) -> bool:
    """Whether adding/comparing values of these units is a bug.

    Two *different* capacity-or-duration units never belong on the two
    sides of ``+``, ``-`` or a comparison: bytes vs MB is a 2**20 scale
    error, seconds vs ms is 1e3, and bytes vs seconds is a category
    error.  ``COUNT`` is exempt from additive conflicts — indices and
    cardinalities mix with everything in real code (``offset + n``) and
    flagging them would be noise, not protection.
    """
    if a is None or b is None or a is b:
        return False
    dimensional = MEMORY_UNITS | TIME_UNITS
    return a in dimensional and b in dimensional


Transfer = Callable[[object, Env], None]
