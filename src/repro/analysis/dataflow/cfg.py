"""Intraprocedural control-flow graphs over Python statement lists.

One :class:`CFG` is built per *scope* — a function body or the module
top level — with basic blocks of simple statements, labelled edges for
branches (``"true"``/``"false"`` on ``if``/``while``/``for``/``assert``
tests, ``"case"`` on ``match`` arms, ``"exc"`` into exception handlers)
and a single synthetic exit block.  Nested function and class bodies are
*not* inlined: a ``def`` statement is an ordinary simple statement of
the enclosing scope, and gets its own CFG through :func:`iter_scopes`.

Precision notes, deliberate and documented:

* inside a ``try`` body every *top-level* statement starts a fresh block
  with an ``"exc"`` edge to each handler, so a handler is never wrongly
  dominated by a later ``try``-body statement.  Exceptions raised from
  blocks nested deeper (an ``if`` arm inside the ``try``) share their
  statement's edge — conservative enough for the dominance queries the
  rules ask.
* ``finally`` bodies are modelled on the fall-through path only.
* statements after an unconditional ``return``/``raise``/``break`` land
  in unreachable blocks; :func:`dominators` ignores blocks (and edges
  from blocks) the entry cannot reach.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Union

ScopeNode = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]

#: statement types that open a nested scope — their bodies belong to a
#: different CFG and must not leak into the enclosing scope's analysis
_SCOPE_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
_SCOPE_EXPRS = (ast.Lambda,)


class Block:
    """One basic block: simple statements plus an optional terminator."""

    __slots__ = ("id", "stmts", "terminator", "succs", "preds")

    def __init__(self, bid: int) -> None:
        self.id = bid
        #: simple (non-branching) statements, in order
        self.stmts: list[ast.stmt] = []
        #: the branching statement closing this block (If/While/For/
        #: Match/Assert), or None for straight-line blocks
        self.terminator: Optional[ast.stmt] = None
        #: outgoing edges as (successor, label) pairs
        self.succs: list[tuple["Block", Optional[str]]] = []
        self.preds: list["Block"] = []

    def link(self, other: "Block", label: Optional[str] = None) -> None:
        self.succs.append((other, label))
        other.preds.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edges = ", ".join(f"{b.id}:{lbl or '-'}" for b, lbl in self.succs)
        return f"<Block {self.id} stmts={len(self.stmts)} -> [{edges}]>"


class CFG:
    """A scope's control-flow graph."""

    def __init__(self, scope: Optional[ScopeNode] = None) -> None:
        self.scope = scope
        self.blocks: list[Block] = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> Block:
        b = Block(len(self.blocks))
        self.blocks.append(b)
        return b

    # ------------------------------------------------------------ queries

    def reachable(self) -> list[Block]:
        """Blocks reachable from the entry, in discovery order."""
        seen = {self.entry.id}
        order = [self.entry]
        stack = [self.entry]
        while stack:
            for succ, _ in stack.pop().succs:
                if succ.id not in seen:
                    seen.add(succ.id)
                    order.append(succ)
                    stack.append(succ)
        return order

    def rpo(self) -> list[Block]:
        """Reachable blocks in reverse postorder (good worklist order)."""
        seen: set[int] = set()
        post: list[Block] = []

        def visit(b: Block) -> None:
            stack = [(b, iter(b.succs))]
            seen.add(b.id)
            while stack:
                block, it = stack[-1]
                advanced = False
                for succ, _ in it:
                    if succ.id not in seen:
                        seen.add(succ.id)
                        stack.append((succ, iter(succ.succs)))
                        advanced = True
                        break
                if not advanced:
                    post.append(block)
                    stack.pop()

        visit(self.entry)
        return post[::-1]

    def block_of(self, node: ast.AST) -> Optional[Block]:
        """The reachable block whose statements (or terminator test)
        contain ``node``.  Linear scan — callers hold few queries."""
        for block in self.reachable():
            for stmt in block.stmts:
                for sub in shallow_walk(stmt):
                    if sub is node:
                        return block
            term = block.terminator
            if term is not None:
                for expr in _terminator_exprs(term):
                    for sub in shallow_walk(expr):
                        if sub is node:
                            return block
        return None


def _terminator_exprs(stmt: ast.stmt) -> list[ast.expr]:
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, ast.Assert):
        return [stmt.test] + ([stmt.msg] if stmt.msg else [])
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    return []


def own_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """Expressions evaluated by a statement *itself*.

    Nested statement bodies are excluded — in a CFG they live in their
    own blocks, so a check pass scanning ``own_exprs`` of every yielded
    statement sees each expression exactly once, under the environment
    that actually reaches it.
    """
    out: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        out.extend(stmt.targets)
        out.append(stmt.value)
    elif isinstance(stmt, ast.AnnAssign):
        out.append(stmt.target)
        if stmt.value is not None:
            out.append(stmt.value)
    elif isinstance(stmt, ast.AugAssign):
        out.extend((stmt.target, stmt.value))
    elif isinstance(stmt, ast.Expr):
        out.append(stmt.value)
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            out.append(stmt.value)
    elif isinstance(stmt, ast.Raise):
        if stmt.exc is not None:
            out.append(stmt.exc)
        if stmt.cause is not None:
            out.append(stmt.cause)
    elif isinstance(stmt, ast.Delete):
        out.extend(stmt.targets)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
    else:
        out.extend(_terminator_exprs(stmt))
    return out


def shallow_walk(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested scopes.

    The body of a nested ``def``/``class``/``lambda`` belongs to its own
    CFG; scanning it from the enclosing block would attribute its calls
    and assignments to the wrong control-flow context.  The rule applies
    to the *root* too: passing a ``FunctionDef`` statement yields just
    that node — walk a scope's body statements (not the scope node) to
    see its contents.
    """
    stack = [node]
    while stack:
        cur = stack.pop()
        yield cur
        if isinstance(cur, _SCOPE_STMTS) or isinstance(cur, _SCOPE_EXPRS):
            continue
        for child in ast.iter_child_nodes(cur):
            stack.append(child)


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.current: Block = cfg.entry
        #: True while self.current is on a path from the entry; False
        #: after return/raise/break so dead code cannot add join edges
        self.live = True
        self.loop_stack: list[tuple[Block, Block]] = []  # (header, after)
        self.handler_stack: list[list[Block]] = []

    # ------------------------------------------------------------- helpers

    def _fresh(self) -> Block:
        """Open a new current block with no incoming edge (dead code)."""
        self.current = self.cfg.new_block()
        self.live = False
        return self.current

    def _move_to(self, block: Block, *, link: bool = True,
                 label: Optional[str] = None) -> None:
        if link and self.live:
            self.current.link(block, label)
        self.current = block
        self.live = True

    def _close_branch(self, terminator: ast.stmt) -> Block:
        """Mark the terminator on the current block and return it."""
        origin = self.current
        origin.terminator = terminator
        return origin

    # --------------------------------------------------------------- visit

    def build(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            self.visit(stmt)
        if self.live:
            self.current.link(self.cfg.exit)

    def visit_body(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            self.visit(stmt)

    def visit(self, stmt: ast.stmt) -> None:
        method = getattr(self, f"_visit_{type(stmt).__name__}", None)
        if method is not None:
            method(stmt)
            return
        self._simple(stmt)

    def _simple(self, stmt: ast.stmt) -> None:
        if self.handler_stack and self.live:
            # every top-level try-body statement gets its own block with
            # an exception edge into each handler (see module docstring)
            nb = self.cfg.new_block()
            self.current.link(nb)
            self.current = nb
            for handler in self.handler_stack[-1]:
                nb.link(handler, "exc")
        self.current.stmts.append(stmt)

    # --- branches

    def _visit_If(self, stmt: ast.If) -> None:
        origin = self._close_branch(stmt)
        then_b = self.cfg.new_block()
        after = self.cfg.new_block()
        was_live = self.live
        if was_live:
            origin.link(then_b, "true")
        self.current, self.live = then_b, was_live
        self.visit_body(stmt.body)
        if self.live:
            self.current.link(after)
        if stmt.orelse:
            else_b = self.cfg.new_block()
            if was_live:
                origin.link(else_b, "false")
            self.current, self.live = else_b, was_live
            self.visit_body(stmt.orelse)
            if self.live:
                self.current.link(after)
        elif was_live:
            origin.link(after, "false")
        self.current = after
        self.live = bool(after.preds)

    def _visit_While(self, stmt: ast.While) -> None:
        header = self.cfg.new_block()
        self._move_to(header)
        header.terminator = stmt
        body = self.cfg.new_block()
        after = self.cfg.new_block()
        header.link(body, "true")
        is_forever = (
            isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        )
        if not is_forever:
            header.link(after, "false")
        self.loop_stack.append((header, after))
        self.current, self.live = body, True
        self.visit_body(stmt.body)
        if self.live:
            self.current.link(header)
        self.loop_stack.pop()
        if stmt.orelse:
            # the else arm runs on normal loop exit; fold it onto the
            # after path (break skips it — approximation noted)
            self.current, self.live = after, bool(after.preds)
            self.visit_body(stmt.orelse)
            return
        self.current = after
        self.live = bool(after.preds)

    def _visit_For(self, stmt: ast.For) -> None:
        self._for_like(stmt)

    def _visit_AsyncFor(self, stmt: ast.AsyncFor) -> None:
        self._for_like(stmt)

    def _for_like(self, stmt) -> None:
        header = self.cfg.new_block()
        self._move_to(header)
        header.terminator = stmt
        body = self.cfg.new_block()
        after = self.cfg.new_block()
        header.link(body, "true")
        header.link(after, "false")
        self.loop_stack.append((header, after))
        self.current, self.live = body, True
        self.visit_body(stmt.body)
        if self.live:
            self.current.link(header)
        self.loop_stack.pop()
        if stmt.orelse:
            self.current, self.live = after, True
            self.visit_body(stmt.orelse)
            return
        self.current, self.live = after, True

    def _visit_Match(self, stmt: ast.Match) -> None:
        origin = self._close_branch(stmt)
        after = self.cfg.new_block()
        was_live = self.live
        exhaustive = False
        for case in stmt.cases:
            case_b = self.cfg.new_block()
            if was_live:
                origin.link(case_b, "case")
            self.current, self.live = case_b, was_live
            self.visit_body(case.body)
            if self.live:
                self.current.link(after)
            if (
                isinstance(case.pattern, ast.MatchAs)
                and case.pattern.pattern is None
                and case.guard is None
            ):
                exhaustive = True
        if was_live and not exhaustive:
            origin.link(after, "false")
        self.current = after
        self.live = bool(after.preds)

    def _visit_Assert(self, stmt: ast.Assert) -> None:
        origin = self._close_branch(stmt)
        after = self.cfg.new_block()
        if self.live:
            origin.link(after, "true")
            origin.link(self.cfg.exit, "false")
        self.current = after
        self.live = bool(after.preds)

    # --- exceptions

    def _visit_Try(self, stmt) -> None:
        handlers = [self.cfg.new_block() for _ in stmt.handlers]
        after = self.cfg.new_block()
        self.handler_stack.append(handlers)
        self.visit_body(stmt.body)
        self.handler_stack.pop()
        if stmt.orelse:
            self.visit_body(stmt.orelse)
        if self.live:
            self.current.link(after)
        for handler, block in zip(stmt.handlers, handlers):
            self.current, self.live = block, True
            self.visit_body(handler.body)
            if self.live:
                self.current.link(after)
        self.current = after
        self.live = bool(after.preds)
        if stmt.finalbody:
            # fall-through path only (see module docstring)
            self.visit_body(stmt.finalbody)

    _visit_TryStar = _visit_Try

    # --- with

    def _visit_With(self, stmt) -> None:
        self._simple(stmt)
        self.visit_body(stmt.body)

    _visit_AsyncWith = _visit_With

    # --- jumps

    def _visit_Return(self, stmt: ast.Return) -> None:
        self._simple(stmt)
        if self.live:
            self.current.link(self.cfg.exit)
        self._fresh()

    def _visit_Raise(self, stmt: ast.Raise) -> None:
        self._simple(stmt)
        if self.live:
            if self.handler_stack:
                for handler in self.handler_stack[-1]:
                    self.current.link(handler, "exc")
            else:
                self.current.link(self.cfg.exit)
        self._fresh()

    def _visit_Break(self, stmt: ast.Break) -> None:
        self._simple(stmt)
        if self.live and self.loop_stack:
            self.current.link(self.loop_stack[-1][1])
        self._fresh()

    def _visit_Continue(self, stmt: ast.Continue) -> None:
        self._simple(stmt)
        if self.live and self.loop_stack:
            self.current.link(self.loop_stack[-1][0])
        self._fresh()


def build_cfg(scope: ScopeNode) -> CFG:
    """Build the CFG of one scope's statement list."""
    cfg = CFG(scope)
    _Builder(cfg).build(scope.body)
    return cfg


# ---------------------------------------------------------------------------
# Scope iteration & per-context memoization
# ---------------------------------------------------------------------------


def iter_scopes(tree: ast.Module) -> Iterator[ScopeNode]:
    """The module itself, then every (nested) function definition."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def scopes_for(ctx) -> tuple[ScopeNode, ...]:
    """Memoized :func:`iter_scopes` over a FileContext's tree.

    Three dataflow rules iterate the same scope list per file; one walk
    (reusing the context's cached node tuple) serves them all.
    """
    scopes = ctx.cache.get("dataflow.scopes")
    if scopes is None:
        scopes = (ctx.tree,) + tuple(
            node
            for node in ctx.nodes()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        ctx.cache["dataflow.scopes"] = scopes
    return scopes


def cfg_for_scope(ctx, scope: ScopeNode) -> CFG:
    """Memoized :func:`build_cfg` keyed on the FileContext's cache."""
    cache = ctx.cache.setdefault("dataflow.cfg", {})
    key = id(scope)
    cfg = cache.get(key)
    if cfg is None:
        cfg = build_cfg(scope)
        cache[key] = cfg
    return cfg


# ---------------------------------------------------------------------------
# Dominance
# ---------------------------------------------------------------------------


def dominators(cfg: CFG) -> dict[int, frozenset[int]]:
    """Block id → ids of its dominators, over entry-reachable blocks.

    Classic iterative dataflow: ``dom(entry) = {entry}``, ``dom(b) =
    {b} ∪ ⋂ dom(p)`` over reachable predecessors.  Edges from
    unreachable blocks (dead code after a ``return``) are ignored so
    they cannot dilute the intersection.
    """
    order = cfg.rpo()
    reach = {b.id for b in order}
    all_ids = frozenset(reach)
    dom: dict[int, frozenset[int]] = {
        b.id: (frozenset([b.id]) if b is cfg.entry else all_ids)
        for b in order
    }
    changed = True
    while changed:
        changed = False
        for block in order:
            if block is cfg.entry:
                continue
            preds = [p for p in block.preds if p.id in reach]
            if preds:
                new = frozenset.intersection(*(dom[p.id] for p in preds))
            else:
                new = frozenset()
            new = new | {block.id}
            if new != dom[block.id]:
                dom[block.id] = new
                changed = True
    return dom
