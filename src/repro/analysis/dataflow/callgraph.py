"""Project-wide call graph, built during the driver's ``collect`` pass.

Name resolution is deliberately heuristic — replint has no type
inference — but the heuristics are the *same* ones the codebase's own
conventions make reliable, mirroring the receiver-name matching the
syntactic ``lifecycle-protocol`` rule already uses:

* a bare ``name(...)`` call resolves to a module-level function of the
  same module, or through a ``from x import name`` to module ``x``;
* ``self.m(...)`` resolves to method ``m`` of the enclosing class, then
  of its (project-local) base classes;
* ``recv.m(...)`` resolves to every method ``m`` on classes whose
  lowercase name contains the receiver's last attribute segment
  (``self.estimator.fit`` → ``CostEstimator.fit``), for segments of at
  least three characters so ``x.get`` cannot fan out everywhere.

Unresolvable calls (stdlib, numpy, dynamic dispatch) simply produce no
edge; rules built on reachability must treat "no edge" as "no
knowledge", which both shipped consumers do.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.core import FileContext, dotted_name
from repro.analysis.dataflow.cfg import shallow_walk


@dataclass(slots=True)
class FunctionInfo:
    """One function or method definition in the analyzed project."""

    qualname: str  # "<module>:<Class>.<name>" or "<module>:<name>"
    module: str
    cls: Optional[str]
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    relpath: str
    #: every Call node in the function's own body (shallow), computed
    #: once per file context and shared by every graph consumer
    calls: tuple[ast.Call, ...] = ()
    #: resolved callee qualnames, filled by :meth:`CallGraph.resolve`
    callees: set[str] = field(default_factory=set)


def module_name(relpath: str) -> str:
    """``src/repro/core/planner.py`` → ``repro.core.planner``."""
    mod = relpath[:-3] if relpath.endswith(".py") else relpath
    if mod.startswith("src/"):
        mod = mod[4:]
    mod = mod.replace("/", ".")
    if mod.endswith(".__init__"):
        mod = mod[: -len(".__init__")]
    return mod


class CallGraph:
    """Functions, classes, imports and resolved call edges of a project.

    Build with one :meth:`add_file` per :class:`FileContext` during
    ``collect``; edges are resolved lazily on first reachability or
    caller query so the graph is complete before anyone reads it.
    """

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        #: module → {function name → qualname} (module-level defs only)
        self.module_scope: dict[str, dict[str, str]] = {}
        #: module → {class name → {method name → qualname}}
        self.classes: dict[str, dict[str, dict[str, str]]] = {}
        #: module → {class name → base class names (last dotted segment)}
        self.bases: dict[str, dict[str, list[str]]] = {}
        #: module → {local name → (source module, original name)}
        self.from_imports: dict[str, dict[str, tuple[str, str]]] = {}
        #: method name → [qualname] across every class in the project
        self.methods_by_name: dict[str, list[str]] = {}
        #: id(FunctionDef node) → qualname, for scope → info lookups
        self._by_node: dict[int, str] = {}
        #: callee qualname → caller qualnames (built by resolve)
        self.callers: dict[str, set[str]] = {}
        self._pending: list[tuple[FileContext, str]] = []
        self._resolved = False

    # ------------------------------------------------------------ building

    def add_file(self, ctx: FileContext) -> None:
        mod = module_name(ctx.relpath)
        self.module_scope.setdefault(mod, {})
        self.classes.setdefault(mod, {})
        self.bases.setdefault(mod, {})
        imports = self.from_imports.setdefault(mod, {})
        for node in ctx.nodes():
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, mod, None, stmt)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(ctx, mod, stmt)
        self._pending.append((ctx, mod))
        self._resolved = False

    def _add_class(self, ctx: FileContext, mod: str, node: ast.ClassDef) -> None:
        methods = self.classes[mod].setdefault(node.name, {})
        bases = []
        for base in node.bases:
            dotted = dotted_name(base)
            if dotted is not None:
                bases.append(dotted.rpartition(".")[2])
        self.bases[mod][node.name] = bases
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._add_function(ctx, mod, node.name, stmt)
                methods[stmt.name] = info.qualname

    def _add_function(
        self,
        ctx: FileContext,
        mod: str,
        cls: Optional[str],
        node,
    ) -> FunctionInfo:
        local = f"{cls}.{node.name}" if cls else node.name
        qualname = f"{mod}:{local}"
        info = FunctionInfo(
            qualname=qualname,
            module=mod,
            cls=cls,
            name=node.name,
            node=node,
            relpath=ctx.relpath,
            calls=body_calls(ctx, node),
        )
        self.functions[qualname] = info
        self._by_node[id(node)] = qualname
        if cls is None:
            self.module_scope[mod][node.name] = qualname
        else:
            self.methods_by_name.setdefault(node.name, []).append(qualname)
        return info

    # ----------------------------------------------------------- resolution

    def resolve(self) -> None:
        """Resolve every call site of every known function into edges."""
        if self._resolved:
            return
        self._resolved = True
        self.callers = {}
        for info in self.functions.values():
            info.callees.clear()
            for sub in info.calls:
                for callee in self.resolve_call(info, sub):
                    info.callees.add(callee)
                    self.callers.setdefault(callee, set()).add(
                        info.qualname
                    )

    def resolve_call(self, caller: FunctionInfo, call: ast.Call) -> list[str]:
        """Qualnames a call *may* dispatch to (empty when unknown)."""
        dotted = dotted_name(call.func)
        if dotted is None:
            return []
        parts = dotted.split(".")
        if len(parts) == 1:
            return self._resolve_plain(caller.module, parts[0])
        method = parts[-1]
        receiver = parts[-2]
        if parts[0] == "self" and len(parts) == 2 and caller.cls is not None:
            found = self._resolve_self(caller.module, caller.cls, method)
            if found:
                return found
        # receiver-name → class-name heuristic (lifecycle-rule idiom)
        seg = receiver.lstrip("_")
        if len(seg) < 3:
            return []
        out = []
        for qualname in self.methods_by_name.get(method, ()):
            info = self.functions[qualname]
            if info.cls is not None and seg.lower() in info.cls.lower():
                out.append(qualname)
        return out

    def _resolve_plain(self, mod: str, name: str) -> list[str]:
        found = self.module_scope.get(mod, {}).get(name)
        if found is not None:
            return [found]
        imported = self.from_imports.get(mod, {}).get(name)
        if imported is not None:
            src_mod, orig = imported
            found = self.module_scope.get(src_mod, {}).get(orig)
            if found is not None:
                return [found]
        return []

    def _resolve_self(
        self, mod: str, cls: str, method: str, _seen: Optional[set] = None
    ) -> list[str]:
        _seen = _seen if _seen is not None else set()
        if (mod, cls) in _seen:
            return []
        _seen.add((mod, cls))
        found = self.classes.get(mod, {}).get(cls, {}).get(method)
        if found is not None:
            return [found]
        # walk project-local base classes, searching every module that
        # defines a class of that name (base names are unqualified)
        for base in self.bases.get(mod, {}).get(cls, ()):
            for other_mod, classes in self.classes.items():
                if base in classes:
                    found_b = self._resolve_self(other_mod, base, method, _seen)
                    if found_b:
                        return found_b
        return []

    # -------------------------------------------------------------- queries

    def function_for_node(self, node: ast.AST) -> Optional[FunctionInfo]:
        qualname = self._by_node.get(id(node))
        return self.functions.get(qualname) if qualname else None

    def reachable_from(self, start: Iterable[str]) -> set[str]:
        """Qualnames transitively callable from ``start`` (inclusive)."""
        self.resolve()
        seen = set(start)
        stack = list(seen)
        while stack:
            info = self.functions.get(stack.pop())
            if info is None:
                continue
            for callee in info.callees:
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen

    def callers_of(self, qualname: str) -> set[str]:
        self.resolve()
        return self.callers.get(qualname, set())


def shallow_walk_body(scope) -> Iterable[ast.AST]:
    """Shallow-walk every statement of a function body (not the scope
    node itself, whose decorators/defaults belong to the enclosing
    scope)."""
    for stmt in scope.body:
        yield from shallow_walk(stmt)


def body_calls(ctx: FileContext, scope) -> tuple[ast.Call, ...]:
    """Memoized Call nodes of one scope's own body.

    Five consumers scan function bodies for calls (edge resolution in
    two graphs, taint-summary seeding, flush and fit detection); the
    walk happens once per function per analysis run.
    """
    cache = ctx.cache.setdefault("dataflow.calls", {})
    key = id(scope)
    calls = cache.get(key)
    if calls is None:
        calls = tuple(
            n for n in shallow_walk_body(scope) if isinstance(n, ast.Call)
        )
        cache[key] = calls
    return calls
