"""The dataflow tier of replint: CFGs, lattices, taint and call graphs.

The syntactic rules in :mod:`repro.analysis.rules` see one AST node at a
time; this package gives rules *flow* — an intraprocedural control-flow
graph per scope (:mod:`.cfg`), a generic forward fixpoint solver over
configurable lattices (:mod:`.lattice`), a taint engine with pluggable
source detectors and call summaries (:mod:`.taint`), and a project-wide
name-resolved call graph built during the driver's ``collect`` pass
(:mod:`.callgraph`).

Dataflow rules keep the exact same :class:`repro.analysis.core.Rule`
protocol as syntactic ones — they just build their facts here instead of
walking raw ASTs.  Per-file artifacts (CFGs, scope tables) are memoized
on :attr:`repro.analysis.core.FileContext.cache` so several rules share
one construction.
"""

from repro.analysis.dataflow.callgraph import CallGraph, FunctionInfo
from repro.analysis.dataflow.cfg import (
    CFG,
    Block,
    build_cfg,
    cfg_for_scope,
    dominators,
    iter_scopes,
    scopes_for,
    own_exprs,
    shallow_walk,
)
from repro.analysis.dataflow.lattice import (
    ForwardAnalysis,
    Unit,
    join_units,
    solve_forward,
)
from repro.analysis.dataflow.taint import (
    SourceDetector,
    TaintEngine,
    TaintSource,
)

__all__ = [
    "CFG",
    "Block",
    "build_cfg",
    "cfg_for_scope",
    "dominators",
    "iter_scopes",
    "scopes_for",
    "own_exprs",
    "shallow_walk",
    "ForwardAnalysis",
    "solve_forward",
    "Unit",
    "join_units",
    "SourceDetector",
    "TaintEngine",
    "TaintSource",
    "CallGraph",
    "FunctionInfo",
]
