"""Taint propagation: which expressions carry nondeterministic values.

A *taint source* is an expression whose value depends on something
outside the seeded, simulated world — a host wall-clock read or an
unseeded RNG draw.  :class:`SourceDetector` recognises those calls per
file (reusing the same import-alias tracking as the syntactic
``wall-clock`` and ``rng-discipline`` rules, so the two tiers can never
disagree about what counts as a clock).  :class:`TaintEngine` is the
:class:`~repro.analysis.dataflow.lattice.ForwardAnalysis` instance that
pushes source labels through assignments, augmented assigns, tuple
unpacking, attribute stores, container mutation and calls; the abstract
value for a variable is a ``frozenset`` of :class:`TaintSource` labels,
joined by union, so a finding can always name the line the taint was
*born* on, not just where it escaped.

Two deliberate holes, both documented in docs/static-analysis.md:

* kwargs named in ``clean_fields`` neither taint the constructed object
  nor count as sinks — ``planning_time=`` is the sanctioned wall-clock
  field that ``RunResult.digest`` already excludes;
* taint entering a callee through an *argument* is not tracked into the
  callee's body (summaries cover return values only); the sink-side
  constructor checks catch the flows that matter for digest parity.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional

from repro.analysis.core import FileContext, dotted_name
from repro.analysis.dataflow.lattice import Env, ForwardAnalysis
from repro.analysis.rules.rng import _CONSTRUCTORS as _RNG_CONSTRUCTORS
from repro.analysis.rules.wallclock import _DATETIME_FNS, _TIME_FNS

Taint = FrozenSet["TaintSource"]
EMPTY: Taint = frozenset()

#: container methods that fold an argument's value into the receiver
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "extend",
    "insert",
    "update",
    "setdefault",
    "push",
    "put",
}


@dataclass(frozen=True, slots=True)
class TaintSource:
    """One origin of nondeterminism, carried along every flow from it."""

    #: "wall-clock" | "unseeded-rng" | "legacy-rng" | "stdlib-random"
    kind: str
    #: file the source call lives in (posix relpath)
    path: str
    line: int
    #: the call as written, e.g. ``time.perf_counter``
    detail: str

    def describe(self) -> str:
        return f"{self.kind} `{self.detail}(...)` at {self.path}:{self.line}"


class SourceDetector:
    """Per-file recognition of taint-source calls.

    Import aliases are resolved once per context (``import time as t``,
    ``from time import perf_counter as pc`` and numpy spellings all
    count), mirroring the syntactic rules' logic.
    """

    def __init__(self, ctx: FileContext) -> None:
        self.relpath = ctx.relpath
        self.time_aliases = {"time"}
        self.time_from: set[str] = set()
        self.numpy_aliases = {"numpy"}
        self.random_aliases: set[str] = set()
        self.random_from: set[str] = set()
        for node in ctx.nodes():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        self.time_aliases.add(alias.asname or "time")
                    elif alias.name == "numpy":
                        self.numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "random":
                        self.random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_FNS:
                            self.time_from.add(alias.asname or alias.name)
                elif node.module == "random":
                    for alias in node.names:
                        self.random_from.add(alias.asname or alias.name)

    def source_for_call(self, node: ast.Call) -> Optional[TaintSource]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        root, _, fn = dotted.rpartition(".")
        kind: Optional[str] = None
        if (root in self.time_aliases and fn in _TIME_FNS) or (
            not root and fn in self.time_from
        ):
            kind = "wall-clock"
        elif fn in _DATETIME_FNS and root.split(".")[-1] in ("datetime", "date"):
            kind = "wall-clock"
        elif root in self.random_aliases or (not root and fn in self.random_from):
            kind = "stdlib-random"
        elif (
            root in {f"{a}.random" for a in self.numpy_aliases}
            and fn not in _RNG_CONSTRUCTORS
        ):
            kind = "legacy-rng"
        elif fn == "default_rng" and not node.args and not node.keywords:
            kind = "unseeded-rng"
        if kind is None:
            return None
        return TaintSource(
            kind=kind, path=self.relpath, line=node.lineno, detail=dotted
        )


def detector_for(ctx: FileContext) -> SourceDetector:
    """Memoized :class:`SourceDetector` on the context's cache."""
    det = ctx.cache.get("dataflow.sources")
    if det is None:
        det = SourceDetector(ctx)
        ctx.cache["dataflow.sources"] = det
    return det


class TaintEngine(ForwardAnalysis):
    """Forward taint propagation over one scope's CFG.

    ``call_summary`` is the interprocedural hook: given a Call node it
    returns the taint of the callee's *return value* (the determinism
    rule wires this to call-graph summaries; fixture tests can leave it
    empty).  ``return_taint`` accumulates the taint of every ``return``
    expression seen while solving — that is the scope's own summary.
    """

    def __init__(
        self,
        detector: SourceDetector,
        clean_fields: frozenset[str] = frozenset({"planning_time"}),
        call_summary: Optional[Callable[[ast.Call], Taint]] = None,
    ) -> None:
        self.detector = detector
        self.clean_fields = clean_fields
        self.call_summary = call_summary or (lambda call: EMPTY)
        self.return_taint: set[TaintSource] = set()

    # -------------------------------------------------------------- lattice

    def join_values(self, a: Taint, b: Taint) -> Taint:
        return a | b

    # ----------------------------------------------------------- expressions

    def eval(self, node: Optional[ast.expr], env: Env) -> Taint:
        """The taint of one expression under ``env``."""
        if node is None or isinstance(node, (ast.Constant, ast.Lambda)):
            return EMPTY
        if isinstance(node, ast.Name):
            return env.get(node.id, EMPTY)
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is not None and dotted in env:
                return env[dotted]
            # an attribute of a tainted object is tainted
            return self.eval(node.value, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.NamedExpr):
            taint = self.eval(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = taint
            return taint
        if isinstance(node, ast.IfExp):
            return self.eval(node.body, env) | self.eval(node.orelse, env)
        if isinstance(node, ast.BoolOp):
            out = EMPTY
            for value in node.values:
                out |= self.eval(value, env)
            return out
        if isinstance(node, ast.BinOp):
            return self.eval(node.left, env) | self.eval(node.right, env)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env)
        if isinstance(node, ast.Compare):
            out = self.eval(node.left, env)
            for comp in node.comparators:
                out |= self.eval(comp, env)
            return out
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = EMPTY
            for elt in node.elts:
                out |= self.eval(elt, env)
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key in node.keys:
                if key is not None:
                    out |= self.eval(key, env)
            for value in node.values:
                out |= self.eval(value, env)
            return out
        if isinstance(node, ast.Subscript):
            return self.eval(node.value, env)
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, ast.Await):
            return self.eval(node.value, env)
        if isinstance(node, ast.JoinedStr):
            out = EMPTY
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.eval(value.value, env)
            return out
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            out = EMPTY
            for gen in node.generators:
                out |= self.eval(gen.iter, env)
            if isinstance(node, ast.DictComp):
                out |= self.eval(node.key, env) | self.eval(node.value, env)
            else:
                out |= self.eval(node.elt, env)
            return out
        if isinstance(node, ast.Slice):
            return EMPTY
        # conservative default: union over child expressions
        out = EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.eval(child, env)
        return out

    def _eval_call(self, node: ast.Call, env: Env) -> Taint:
        taint = EMPTY
        label = self.detector.source_for_call(node)
        if label is not None:
            taint |= frozenset({label})
        taint |= self.call_summary(node)
        # a method's result inherits its receiver's taint (Attribute
        # eval falls through to the receiver); a plain Name callee is
        # deliberately NOT evaluated — a function is not its result
        if isinstance(node.func, ast.Attribute):
            taint |= self.eval(node.func.value, env)
        for arg in node.args:
            taint |= self.eval(arg, env)
        for kw in node.keywords:
            if kw.arg is not None and kw.arg in self.clean_fields:
                continue  # sanctioned wall-clock field: taint stops here
            taint |= self.eval(kw.value, env)
        return taint

    # ------------------------------------------------------------ statements

    def transfer_stmt(self, stmt: ast.stmt, env: Env) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, stmt.value, taint, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                taint = self.eval(stmt.value, env)
                self._assign(stmt.target, stmt.value, taint, env)
        elif isinstance(stmt, ast.AugAssign):
            taint = self.eval(stmt.target, env) | self.eval(stmt.value, env)
            self._assign(stmt.target, None, taint, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_taint |= self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Expr):
            self._effect(stmt.value, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, None, taint, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                dotted = dotted_name(target)
                if dotted is not None:
                    env.pop(dotted, None)

    def transfer_terminator(self, stmt: ast.stmt, env: Env) -> None:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self.eval(stmt.iter, env)
            self._assign(stmt.target, None, taint, env)
        else:
            for expr in _terminator_tests(stmt):
                # walrus targets inside a test must land in the env
                self.eval(expr, env)

    # --------------------------------------------------------------- helpers

    def _assign(
        self,
        target: ast.expr,
        value: Optional[ast.expr],
        taint: Taint,
        env: Env,
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = taint
        elif isinstance(target, ast.Attribute):
            dotted = dotted_name(target)
            if dotted is not None:
                env[dotted] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = None
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                elts = value.elts
            for i, sub in enumerate(target.elts):
                sub_taint = self.eval(elts[i], env) if elts else taint
                if isinstance(sub, ast.Starred):
                    sub = sub.value
                self._assign(sub, None, sub_taint, env)
        elif isinstance(target, ast.Subscript):
            # d[k] = tainted  →  the container is tainted
            dotted = dotted_name(target.value)
            if dotted is not None:
                env[dotted] = env.get(dotted, EMPTY) | taint

    def _effect(self, expr: ast.expr, env: Env) -> None:
        """Side effects of an expression statement: container mutation."""
        taint = self.eval(expr, env)  # registers walrus targets too
        if not isinstance(expr, ast.Call):
            return
        func = expr.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            recv = dotted_name(func.value)
            if recv is not None and taint:
                env[recv] = env.get(recv, EMPTY) | taint


def _terminator_tests(stmt: ast.stmt) -> list[ast.expr]:
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, ast.Assert):
        return [stmt.test]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    return []
