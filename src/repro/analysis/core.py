"""AST visitor core, rule registry and the two-pass analysis driver.

``replint`` mirrors the execution engine's architecture on purpose: rules
plug into a registry through :func:`register_rule` exactly the way
execution modes plug into :func:`repro.engine.strategies.register_strategy`,
and the driver never branches on a rule's identity — it only runs the
protocol (``configure`` → ``collect`` over every file → ``check`` over
every file).

The two passes exist because some invariants are cross-file: an event
dataclass is *defined* in ``engine/events.py`` but *emitted* from
``engine/strategies.py``, so the event-bus rule first collects every
emitted/subscribed class name project-wide, then checks definitions.

Suppression layers (outermost wins):

* per-rule ``allow`` path globs in ``[tool.replint.rules.<id>]`` — for
  whole files that are the sanctioned home of an otherwise-banned
  construct (e.g. the estimator's ``perf_counter`` measurement);
* inline ``# replint: ignore[rule-id]`` pragmas on the flagged line;
* the baseline file, for grandfathered findings (see
  :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Iterable, Mapping, Optional

#: severity levels, in increasing order of consequence.  ``off`` disables
#: the rule, ``warning`` reports without failing, ``error`` fails the run.
SEVERITIES = ("off", "warning", "error")

_PRAGMA = re.compile(r"#\s*replint:\s*ignore(?:\[(?P<rules>[\w\-, ]+)\])?")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    ``code`` is the stripped source line — the baseline key, so that
    grandfathered findings survive unrelated edits that shift line
    numbers (see :mod:`repro.analysis.baseline`).
    """

    rule: str
    path: str  # posix-style path relative to the project root
    line: int
    col: int
    message: str
    severity: str
    code: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "code": self.code,
        }


class FileContext:
    """One parsed source file, shared by every rule's passes."""

    def __init__(self, relpath: str, source: str) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.relpath)
        self._ignores: Optional[dict[int, Optional[set[str]]]] = None
        #: scratch space for analyses that derive per-file artifacts worth
        #: sharing across rules (CFGs, scope tables, import maps).  Keyed
        #: by whatever the producing analysis chooses; lives exactly as
        #: long as the context, i.e. one analysis run.
        self.cache: dict = {}
        self._nodes: Optional[tuple[ast.AST, ...]] = None

    # ------------------------------------------------------------- helpers

    def nodes(self) -> tuple[ast.AST, ...]:
        """Every AST node of the file, cached.

        A dozen rules each doing their own ``ast.walk(ctx.tree)`` was
        the single largest cost of a full-repo run; one shared walk per
        file keeps the lint gate fast (see bench_replint_selfcheck).
        """
        if self._nodes is None:
            self._nodes = tuple(ast.walk(self.tree))
        return self._nodes

    def code_at(self, line: int) -> str:
        """The stripped source text of a 1-based line (baseline key)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def ignored(self, rule_id: str, line: int) -> bool:
        """Whether ``# replint: ignore[...]`` suppresses ``rule_id`` here."""
        if self._ignores is None:
            self._ignores = self._scan_pragmas()
        rules = self._ignores.get(line, _MISSING)
        if rules is _MISSING:
            return False
        return rules is None or rule_id in rules

    def _scan_pragmas(self) -> dict[int, Optional[set[str]]]:
        pragmas: dict[int, Optional[set[str]]] = {}
        for lineno, text in enumerate(self.lines, 1):
            m = _PRAGMA.search(text)
            if not m:
                continue
            listed = m.group("rules")
            if listed is None:
                pragmas[lineno] = None  # bare ignore: every rule
            else:
                pragmas[lineno] = {
                    r.strip() for r in listed.split(",") if r.strip()
                }
        return pragmas


_MISSING = object()


class Rule:
    """One invariant checker.

    Subclasses set ``id``/``summary``, optionally override
    :meth:`configure` (rule options from ``[tool.replint.rules.<id>]``),
    :meth:`collect` (project-wide pass 1) and must implement
    :meth:`check` (pass 2, yielding :class:`Finding`\\ s).

    A rule instance lives for one analysis run, so it may accumulate
    cross-file state in ``collect`` — mirroring how a strategy instance
    lives for one iteration.
    """

    #: stable identifier used in config, pragmas, baseline and output
    id: ClassVar[str]
    #: one-line description shown by ``replint --list-rules``
    summary: ClassVar[str]
    default_severity: ClassVar[str] = "error"

    def __init__(self) -> None:
        self.severity: str = self.default_severity
        self.allow: tuple[str, ...] = ()

    # ----------------------------------------------------------- protocol

    def configure(self, options: Mapping[str, object]) -> None:
        """Apply ``[tool.replint.rules.<id>]`` options.

        The base class consumes ``severity`` and ``allow`` (path globs
        where the rule is silent); subclasses handle their own keys and
        should call ``super().configure(options)``.
        """
        severity = options.get("severity", self.severity)
        if severity not in SEVERITIES:
            raise ConfigError(
                f"rule {self.id!r}: severity must be one of {SEVERITIES}, "
                f"got {severity!r}"
            )
        self.severity = severity
        allow = options.get("allow", ())
        if isinstance(allow, str):
            allow = (allow,)
        self.allow = tuple(str(a).replace("\\", "/") for a in allow)

    def collect(self, ctx: FileContext) -> None:
        """Pass 1: gather cross-file facts.  Default: nothing."""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Pass 2: yield findings for one file."""
        raise NotImplementedError

    # ------------------------------------------------------------ helpers

    def allows_path(self, relpath: str) -> bool:
        """Whether ``allow`` globs exempt this file from the rule."""
        return any(
            fnmatch.fnmatch(relpath, pattern) for pattern in self.allow
        )

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.id,
            path=ctx.relpath,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity,
            code=ctx.code_at(line),
        )


class ConfigError(Exception):
    """Bad ``[tool.replint]`` configuration or CLI usage."""


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------


_RULES: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Register (or override) the rule class for ``cls.id``.

    Usable as a decorator; this is the pluggable-analysis hook — a new
    invariant registers here without touching the driver, mirroring
    ``repro.engine.strategies.register_strategy``.
    """
    if not getattr(cls, "id", None):
        raise ValueError(f"rule class {cls.__name__} has no id")
    _RULES[cls.id] = cls
    return cls


def registered_rules() -> dict[str, type[Rule]]:
    """A snapshot of the registry, in registration order."""
    return dict(_RULES)


def create_rules(
    rule_options: Mapping[str, Mapping[str, object]] | None = None,
    select: Optional[Iterable[str]] = None,
) -> list[Rule]:
    """Instantiate and configure every active registered rule.

    Args:
        rule_options: per-rule option tables (``[tool.replint.rules.*]``).
        select: restrict to these rule ids (CLI ``--select``).
    """
    rule_options = rule_options or {}
    unknown = set(rule_options) - set(_RULES)
    if unknown:
        raise ConfigError(
            f"configuration for unknown rule(s): {sorted(unknown)}; "
            f"known rules: {sorted(_RULES)}"
        )
    if select is not None:
        wanted = list(select)
        unknown = set(wanted) - set(_RULES)
        if unknown:
            raise ConfigError(
                f"--select names unknown rule(s): {sorted(unknown)}; "
                f"known rules: {sorted(_RULES)}"
            )
    else:
        wanted = list(_RULES)
    rules: list[Rule] = []
    for rule_id in wanted:
        rule = _RULES[rule_id]()
        rule.configure(rule_options.get(rule_id, {}))
        if rule.severity != "off":
            rules.append(rule)
    return rules


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", "build"}


def discover_files(paths: Iterable[Path], root: Path) -> list[Path]:
    """Every ``.py`` file under ``paths``, sorted for deterministic output."""
    files: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_file() and path.suffix == ".py":
            files.add(path)
        elif path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    files.add(sub)
        elif not path.exists():
            raise ConfigError(f"path does not exist: {path}")
    return sorted(files)


def load_contexts(files: Iterable[Path], root: Path) -> list[FileContext]:
    contexts = []
    for path in files:
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        contexts.append(FileContext(relpath, path.read_text()))
    return contexts


def analyze_contexts(
    contexts: Iterable[FileContext], rules: Iterable[Rule]
) -> list[Finding]:
    """Run the two-pass protocol over already-parsed files."""
    contexts = list(contexts)
    rules = list(rules)
    for rule in rules:
        for ctx in contexts:
            rule.collect(ctx)
    findings: list[Finding] = []
    for ctx in contexts:
        for rule in rules:
            if rule.allows_path(ctx.relpath):
                continue
            for f in rule.check(ctx):
                if not ctx.ignored(rule.id, f.line):
                    findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def analyze_sources(
    sources: Mapping[str, str],
    rules: Optional[Iterable[Rule]] = None,
) -> list[Finding]:
    """Analyze in-memory sources (``{relpath: code}``) — the fixture-test
    entry point.  With ``rules=None`` every registered rule runs at its
    defaults."""
    if rules is None:
        rules = create_rules()
    contexts = [FileContext(rel, src) for rel, src in sources.items()]
    return analyze_contexts(contexts, rules)


# ---------------------------------------------------------------------------
# Shared AST helpers used by several rules
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass(slots=True)
class ParentMap:
    """Child → parent links for lexical-ancestry queries (e.g. "is this
    ``emit`` inside an ``if bus.wants(...)`` guard?")."""

    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def build(cls, tree: ast.AST) -> "ParentMap":
        pm = cls()
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                pm.parents[child] = parent
        return pm

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)
