"""Baseline suppression for grandfathered findings.

The baseline is a committed JSON file listing findings that predate a
rule (or are deliberate and justified); ``replint`` subtracts them from
the report so the gate can be adopted on an imperfect tree and then
*ratcheted* — new findings fail CI, old ones are paid down over time.

Entries are keyed by ``(rule, path, code)`` where ``code`` is the
stripped source line, **not** the line number: unrelated edits above a
grandfathered site must not churn the baseline.  ``count`` absorbs
duplicates of the same line text in one file.  Every entry carries a
``justification`` string; ``--update-baseline`` writes ``TODO:
justify`` placeholders, and review is expected to replace them — an
unexplained suppression is a finding in waiting.

Stale entries (nothing matches them any more) are reported as notes so
the baseline shrinks as fixes land; they never fail the run.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.analysis.core import ConfigError, Finding

_VERSION = 1


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    rule: str
    path: str
    code: str
    count: int = 1
    justification: str = ""

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.code)


@dataclass(slots=True)
class BaselineResult:
    """Outcome of applying a baseline to a finding list."""

    fresh: list[Finding]
    suppressed: list[Finding]
    stale: list[BaselineEntry]


def load_baseline(path: Path) -> list[BaselineEntry]:
    if not path.is_file():
        return []
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"unreadable baseline {path}: {exc}") from exc
    if data.get("version") != _VERSION:
        raise ConfigError(
            f"baseline {path}: unsupported version {data.get('version')!r}"
        )
    entries = []
    for raw in data.get("suppressions", []):
        try:
            entries.append(
                BaselineEntry(
                    rule=raw["rule"],
                    path=raw["path"],
                    code=raw["code"],
                    count=int(raw.get("count", 1)),
                    justification=str(raw.get("justification", "")),
                )
            )
        except KeyError as exc:
            raise ConfigError(
                f"baseline {path}: entry missing key {exc}"
            ) from exc
    return entries


def apply_baseline(
    findings: Iterable[Finding], entries: Iterable[BaselineEntry]
) -> BaselineResult:
    """Split findings into fresh vs baseline-suppressed, flag stale entries."""
    budget: Counter = Counter()
    by_key: dict[tuple[str, str, str], BaselineEntry] = {}
    for entry in entries:
        budget[entry.key()] += entry.count
        by_key[entry.key()] = entry
    fresh: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.code)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed.append(finding)
        else:
            fresh.append(finding)
    stale = [
        by_key[key] for key, left in budget.items() if left > 0
    ]
    return BaselineResult(fresh=fresh, suppressed=suppressed, stale=stale)


def write_baseline(
    path: Path,
    findings: Iterable[Finding],
    previous: Optional[Iterable[BaselineEntry]] = None,
) -> int:
    """Regenerate the baseline from the current findings.

    Justifications of surviving entries are preserved; new entries get a
    ``TODO: justify`` placeholder that review is expected to replace.
    Returns the number of entries written.
    """
    keep = {e.key(): e.justification for e in previous or ()}
    counts: Counter = Counter(
        (f.rule, f.path, f.code) for f in findings
    )
    suppressions = [
        {
            "rule": rule,
            "path": file_path,
            "code": code,
            "count": count,
            "justification": keep.get(
                (rule, file_path, code), "TODO: justify"
            ),
        }
        for (rule, file_path, code), count in sorted(counts.items())
    ]
    payload = {"version": _VERSION, "suppressions": suppressions}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return len(suppressions)
