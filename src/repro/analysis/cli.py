"""The ``replint`` command line (``python -m repro.analysis``).

Exit codes: 0 clean (or warnings only), 1 at least one non-baselined
error finding, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.baseline import (
    BaselineResult,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.config import ReplintConfig, load_config
from repro.analysis.core import (
    ConfigError,
    create_rules,
    discover_files,
    load_contexts,
    analyze_contexts,
    registered_rules,
)
from repro.analysis.reporting import (
    render_json,
    render_rule_list,
    render_sarif,
    render_text,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="replint",
        description=(
            "AST-based invariant linter for this reproduction: determinism "
            "(seeded RNG threading, wall-clock containment), unit safety, "
            "and strategy/event-bus architecture rules."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyze (default: [tool.replint] paths)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text); sarif is the GitHub "
        "code-scanning upload format",
    )
    parser.add_argument(
        "--output",
        type=Path,
        help="write the report to this file as well as stdout",
    )
    parser.add_argument(
        "--config",
        type=Path,
        help="pyproject.toml to read [tool.replint] from "
        "(default: ./pyproject.toml)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        help="baseline file (default: [tool.replint] baseline key)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(render_rule_list(registered_rules().values()))
        return 0
    try:
        return _run(args)
    except ConfigError as exc:
        print(f"replint: error: {exc}", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace) -> int:
    root = Path.cwd()
    config: ReplintConfig = load_config(root, pyproject=args.config)
    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    rules = create_rules(config.rules, select=select)
    paths = [Path(p) for p in (args.paths or config.paths)]
    files = discover_files(paths, root)
    if not files:
        raise ConfigError(f"no python files found under {paths}")
    contexts = load_contexts(files, root)
    findings = analyze_contexts(contexts, rules)

    baseline_path = args.baseline
    if baseline_path is None and config.baseline:
        baseline_path = root / config.baseline
    entries = (
        load_baseline(baseline_path)
        if baseline_path and not args.no_baseline
        else []
    )

    if args.update_baseline:
        if baseline_path is None:
            raise ConfigError(
                "--update-baseline needs a baseline path "
                "(--baseline or [tool.replint] baseline)"
            )
        written = write_baseline(baseline_path, findings, previous=entries)
        print(
            f"replint: wrote {written} suppression(s) to {baseline_path}"
        )
        return 0

    result: BaselineResult = apply_baseline(findings, entries)
    if args.format == "json":
        report = render_json(
            result.fresh, suppressed=result.suppressed, stale=result.stale
        )
    elif args.format == "sarif":
        report = render_sarif(result.fresh, rules=registered_rules())
    else:
        report = render_text(
            result.fresh,
            suppressed_count=len(result.suppressed),
            stale=result.stale,
        )
    print(report)
    if args.output:
        args.output.write_text(report + "\n")
    has_errors = any(f.severity == "error" for f in result.fresh)
    return 1 if has_errors else 0


if __name__ == "__main__":
    sys.exit(main())
