"""Text, JSON and SARIF renderers for replint reports."""

from __future__ import annotations

import json
from typing import Iterable, Mapping, Optional

from repro.analysis.baseline import BaselineEntry
from repro.analysis.core import Finding, Rule


def render_text(
    findings: Iterable[Finding],
    suppressed_count: int = 0,
    stale: Iterable[BaselineEntry] = (),
) -> str:
    """ruff-style ``path:line:col rule severity: message`` lines."""
    lines = []
    errors = warnings = 0
    for f in findings:
        if f.severity == "error":
            errors += 1
        else:
            warnings += 1
        lines.append(
            f"{f.location()}: {f.rule} {f.severity}: {f.message}"
        )
        if f.code:
            lines.append(f"    {f.code}")
    for entry in stale:
        lines.append(
            f"note: stale baseline entry {entry.rule} @ {entry.path} "
            f"({entry.code!r}) — remove it"
        )
    summary = f"replint: {errors} error(s), {warnings} warning(s)"
    if suppressed_count:
        summary += f", {suppressed_count} baselined"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Iterable[Finding],
    suppressed: Iterable[Finding] = (),
    stale: Iterable[BaselineEntry] = (),
) -> str:
    findings = list(findings)
    suppressed = list(suppressed)
    payload = {
        "version": 1,
        "findings": [f.to_json() for f in findings],
        "suppressed": [f.to_json() for f in suppressed],
        "stale_baseline_entries": [
            {"rule": e.rule, "path": e.path, "code": e.code}
            for e in stale
        ],
        "summary": {
            "errors": sum(1 for f in findings if f.severity == "error"),
            "warnings": sum(
                1 for f in findings if f.severity == "warning"
            ),
            "baselined": len(suppressed),
        },
    }
    return json.dumps(payload, indent=2)


#: SARIF "level" per replint severity (SARIF has no "off")
_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def render_sarif(
    findings: Iterable[Finding],
    rules: Optional[Mapping[str, type[Rule]]] = None,
) -> str:
    """SARIF 2.1.0, the format GitHub code scanning ingests.

    Uploading this from CI turns every finding into an inline
    annotation on the PR diff — baselined/suppressed findings are
    deliberately omitted (they are accepted debt, not review signal).
    """
    findings = list(findings)
    rules = dict(rules or {})
    used_ids = sorted(
        {f.rule for f in findings} | set(rules)
    )
    rule_objs = []
    index_of: dict[str, int] = {}
    for i, rule_id in enumerate(used_ids):
        index_of[rule_id] = i
        cls = rules.get(rule_id)
        obj: dict = {"id": rule_id}
        if cls is not None:
            obj["shortDescription"] = {"text": cls.summary}
            obj["defaultConfiguration"] = {
                "level": _SARIF_LEVELS.get(cls.default_severity, "warning")
            }
        rule_objs.append(obj)
    results = []
    for f in findings:
        results.append(
            {
                "ruleId": f.rule,
                "ruleIndex": index_of[f.rule],
                "level": _SARIF_LEVELS.get(f.severity, "warning"),
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.path,
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {
                                "startLine": f.line,
                                "startColumn": f.col,
                                "snippet": {"text": f.code},
                            },
                        }
                    }
                ],
            }
        )
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "replint",
                        "rules": rule_objs,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)


def render_rule_list(rules: Iterable[type[Rule]]) -> str:
    lines = []
    for cls in rules:
        lines.append(f"{cls.id} [{cls.default_severity}]")
        lines.append(f"    {cls.summary}")
    return "\n".join(lines)
