"""Text and JSON renderers for replint reports."""

from __future__ import annotations

import json
from typing import Iterable

from repro.analysis.baseline import BaselineEntry
from repro.analysis.core import Finding, Rule


def render_text(
    findings: Iterable[Finding],
    suppressed_count: int = 0,
    stale: Iterable[BaselineEntry] = (),
) -> str:
    """ruff-style ``path:line:col rule severity: message`` lines."""
    lines = []
    errors = warnings = 0
    for f in findings:
        if f.severity == "error":
            errors += 1
        else:
            warnings += 1
        lines.append(
            f"{f.location()}: {f.rule} {f.severity}: {f.message}"
        )
        if f.code:
            lines.append(f"    {f.code}")
    for entry in stale:
        lines.append(
            f"note: stale baseline entry {entry.rule} @ {entry.path} "
            f"({entry.code!r}) — remove it"
        )
    summary = f"replint: {errors} error(s), {warnings} warning(s)"
    if suppressed_count:
        summary += f", {suppressed_count} baselined"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Iterable[Finding],
    suppressed: Iterable[Finding] = (),
    stale: Iterable[BaselineEntry] = (),
) -> str:
    findings = list(findings)
    suppressed = list(suppressed)
    payload = {
        "version": 1,
        "findings": [f.to_json() for f in findings],
        "suppressed": [f.to_json() for f in suppressed],
        "stale_baseline_entries": [
            {"rule": e.rule, "path": e.path, "code": e.code}
            for e in stale
        ],
        "summary": {
            "errors": sum(1 for f in findings if f.severity == "error"),
            "warnings": sum(
                1 for f in findings if f.severity == "warning"
            ),
            "baselined": len(suppressed),
        },
    }
    return json.dumps(payload, indent=2)


def render_rule_list(rules: Iterable[type[Rule]]) -> str:
    lines = []
    for cls in rules:
        lines.append(f"{cls.id} [{cls.default_severity}]")
        lines.append(f"    {cls.summary}")
    return "\n".join(lines)
