"""Command-line interface: ``python -m repro <command>``.

Commands:
    list                 show tasks, planners, solvers, models, datasets
    run                  run one (task, planner, budget) combination
    sweep                Fig 10-style sweep for one task
    table {1,3,4,5}      regenerate a paper table
    bounds               print per-task memory bounds and default budgets
    gaps                 per-solver optimality gaps vs the exact solver
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.report import render_table
from repro.experiments.runner import (
    PLANNER_NAMES,
    SOLVER_NAMES,
    run_task,
    sweep,
)
from repro.data.datasets import DRIFT_SCENARIOS
from repro.experiments.tasks import GB, TASKS, load_task
from repro.solvers import solver_class
from repro.tensorsim.faults import FaultPlan


def _parse_faults(args: argparse.Namespace) -> FaultPlan | None:
    if not args.faults:
        return None
    try:
        return FaultPlan.parse(args.faults, seed=args.fault_seed)
    except ValueError as exc:
        raise SystemExit(f"error: invalid --faults spec: {exc}") from exc


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be non-negative")
    return value


def _add_fault_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults",
        default="",
        metavar="SPEC",
        help=(
            "fault-injection spec, ';'-separated clauses: "
            "'frag:start=20,iters=3,bytes=512M' (fragmentation spike), "
            "'alloc:start=30,count=2,min=1M' (transient alloc failures), "
            "'noise:sigma=0.05,bias=-0.1' (measurement noise)"
        ),
    )
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument(
        "--max-retries",
        type=_non_negative_int,
        default=3,
        help="OOM recovery retry budget per iteration (0 disables recovery)",
    )


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.data.datasets import available_datasets
    from repro.models.registry import available_models

    print("tasks:    ", ", ".join(sorted(TASKS)))
    print("planners: ", ", ".join(PLANNER_NAMES))
    print("solvers:  ", ", ".join(SOLVER_NAMES))
    print("models:   ", ", ".join(available_models()))
    print("datasets: ", ", ".join(available_datasets()))
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    rows = []
    for abbr in sorted(TASKS):
        task = load_task(abbr, iterations=2, calibration_samples=50)
        lb, ub = task.memory_bounds()
        rows.append(
            {
                "task": abbr,
                "model": task.spec.model,
                "batch": task.spec.batch_size,
                "lower_gb": lb / GB,
                "upper_gb": ub / GB,
                "default_budgets_gb": ", ".join(
                    f"{b / GB:.2f}" for b in task.default_budgets()
                ),
            }
        )
    print(render_table(rows, title="memory bounds (worst-case input)"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    task = load_task(
        args.task,
        iterations=args.iterations,
        seed=args.seed,
        drift_scenario=args.drift_scenario,
    )
    budget = int(args.budget_gb * GB)
    faults = _parse_faults(args)
    if args.static_fit and args.planner != "mimose":
        raise SystemExit(
            "error: --static-fit applies to --planner mimose only"
        )
    # A drift scenario arms mimose's lifecycle monitors unless the run is
    # the frozen-fit ablation comparator.
    drift_detection = (
        args.drift_scenario is not None
        and args.planner == "mimose"
        and not args.static_fit
    )
    # Both runs are capped at the same iteration count so normalized_time
    # compares runs of equal length; the baseline stays fault-free as the
    # normalisation reference.
    counter = None
    observers: list = []
    if args.trace:
        from repro.engine.events import EventCounter

        counter = EventCounter()
        observers.append(lambda ex: counter.attach(ex.events))
    scheduler = args.scheduler if args.scheduler != "greedy" else None
    if scheduler is not None and args.planner != "mimose":
        raise SystemExit(
            f"error: --solver {scheduler} applies to --planner mimose "
            f"only, not {args.planner!r}"
        )
    if args.bwd_ratio is not None:
        if scheduler is None or not solver_class(scheduler).prices_actions:
            raise SystemExit(
                "error: --bwd-ratio applies to action-pricing solvers "
                "only (hybrid, exact, lp)"
            )
        if args.bwd_ratio <= 0:
            raise SystemExit("error: --bwd-ratio must be positive")
    # Capture the executor so the report can say which pricing branch the
    # solver's cost model actually used (observers never alter simulation).
    executor_box: list = []
    if scheduler is not None and solver_class(scheduler).prices_actions:
        observers.append(executor_box.append)
    is_baseline_run = args.planner == "baseline" and faults is None
    baseline = run_task(
        task,
        "baseline",
        budget,
        max_iterations=args.iterations,
        observers=observers if is_baseline_run else (),
        compiled=not args.no_compiled,
    )
    result = (
        baseline
        if is_baseline_run
        else run_task(
            task,
            args.planner,
            budget,
            max_iterations=args.iterations,
            faults=faults,
            max_retries=args.max_retries,
            observers=observers,
            scheduler=scheduler,
            bwd_ratio=args.bwd_ratio,
            compiled=not args.no_compiled,
            drift_detection=drift_detection,
            static_fit=args.static_fit,
            gap_sizes=args.gap_sizes,
        )
    )
    breakdown = result.time_breakdown()
    rows = [
        {
            "planner": args.planner,
            "iterations": result.num_iterations,
            "normalized_time": result.normalized_time(baseline),
            "mean_iter_ms": 1e3 * result.mean_iteration_time(),
            "peak_used_gb": result.peak_in_use / GB,
            "peak_reserved_gb": result.peak_reserved / GB,
            "recompute_s": breakdown["recompute_time"],
            "overhead_frac": result.overhead_fraction(),
            "oom_iterations": result.oom_count,
            "retries": result.total_retries,
            "recovered": result.recovered_count,
            "plan_cache": f"{result.plan_cache_hit_rate:.0%}",
            "replay": f"{result.replay_hit_rate:.0%}",
            "compiled": f"{result.compiled_hit_rate:.0%}",
            "refits": result.refits,
            "drift_events": result.drift_events,
        }
    ]
    if args.gap_sizes:
        from repro.experiments.optimality import format_gaps

        rows[0]["optimality_gap"] = format_gaps(result.optimality_gaps)
    title = f"{args.task} @ {args.budget_gb:.2f} GB ({args.iterations} iterations)"
    if args.drift_scenario is not None:
        title += f" [drift: {args.drift_scenario}]"
    if faults is not None:
        title += f" [faults: {faults.describe()}]"
    print(render_table(rows, title=title))
    if result.recovered_count:
        modes = ", ".join(
            f"{mode} x{count}"
            for mode, count in sorted(result.recovery_modes().items())
        )
        print(f"recovery: {modes}")
    if executor_box:
        planner = executor_box[0].planner
        model = planner.scheduler.cost_model
        sizes = {s.input_size for s in result.iterations if not s.is_collect}
        modes = sorted(
            {
                model.pricing_mode(planner.scheduler_input(size))
                for size in sizes
            }
        )
        if modes:
            print(f"swap pricing: {', '.join(modes)}")
    if counter is not None:
        print("events:")
        for name, count in sorted(counter.counts.items()):
            print(f"  {name:<18} {count}")
    return 0 if result.succeeded else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    task = load_task(
        args.task,
        iterations=args.iterations,
        seed=args.seed,
        drift_scenario=args.drift_scenario,
    )
    budgets = task.default_budgets(args.points)
    planners = args.planners.split(",") if args.planners else list(PLANNER_NAMES)
    faults = _parse_faults(args)
    results = sweep(
        task,
        planners,
        budgets,
        faults=faults,
        max_retries=args.max_retries,
        jobs=args.jobs,
        compiled=not args.no_compiled,
        drift_detection=args.drift_scenario is not None,
        gap_sizes=args.gap_sizes,
    )
    baseline = next(r for r in results if r.planner_name == "baseline")
    rows = []
    for r in results:
        row: dict[str, object] = {
            "planner": r.planner_name,
            "budget_gb": r.budget_bytes / GB,
            "normalized_time": r.normalized_time(baseline),
            "peak_reserved_gb": r.peak_reserved / GB,
            "oom": r.oom_count,
            "retries": r.total_retries,
            "recovered": r.recovered_count,
            "refits": r.refits,
            "drift_events": r.drift_events,
        }
        if args.gap_sizes:
            from repro.experiments.optimality import format_gaps

            row["optimality_gap"] = format_gaps(r.optimality_gaps)
        rows.append(row)
    title = f"{args.task} sweep"
    if args.drift_scenario is not None:
        title += f" [drift: {args.drift_scenario}]"
    if faults is not None:
        title += f" [faults: {faults.describe()}]"
    print(render_table(rows, title=title))
    return 0


def _cmd_gaps(args: argparse.Namespace) -> int:
    """Optimality-gap table over every registered solver (CI smoke gate).

    Exit 1 if the exact solver reports a nonzero gap against itself —
    the invariant the optimality harness is built on.
    """
    from repro.experiments.optimality import (
        fitted_inputs,
        format_gaps,
        gap_report,
    )

    inputs = fitted_inputs(args.task, num_sizes=args.sizes, seed=args.seed)
    try:
        report = gap_report(SOLVER_NAMES, inputs)
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    sizes = [size for size, _ in inputs]
    rows = [
        {
            "solver": name,
            "optimality_gap": format_gaps(report[name]) or "—",
            "cells": len(report[name]),
        }
        for name in SOLVER_NAMES
    ]
    title = f"optimality gaps vs exact: {args.task} @ sizes {sizes}"
    print(render_table(rows, title=title))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import tables

    if args.number == 1:
        print(
            render_table(
                tables.table1_rows(with_gaps=args.gaps), title="Table I"
            )
        )
    elif args.number == 3:
        print(render_table(tables.table3_rows(iterations=args.iterations), title="Table III"))
    elif args.number == 4:
        print(render_table(tables.table4_rows(), title="Table IV"))
    elif args.number == 5:
        print(render_table(tables.table5_rows(), title="Table V"))
    else:
        print(f"no generator for table {args.number}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Mimose reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list tasks/planners/models").set_defaults(
        func=_cmd_list
    )
    sub.add_parser(
        "bounds", help="per-task memory bounds and default budgets"
    ).set_defaults(func=_cmd_bounds)

    run_p = sub.add_parser("run", help="run one task x planner x budget")
    run_p.add_argument("--task", choices=sorted(TASKS), required=True)
    run_p.add_argument("--planner", choices=PLANNER_NAMES, default="mimose")
    run_p.add_argument("--budget-gb", type=float, required=True)
    run_p.add_argument(
        "--solver",
        "--scheduler",  # pre-registry spelling, kept as an alias
        dest="scheduler",
        choices=SOLVER_NAMES,
        default="greedy",
        help=(
            "registered solver for mimose's excess-covering step "
            "('hybrid' mixes per-unit RECOMPUTE/SWAP via the PCIe cost "
            "model, 'exact' is the branch-and-bound optimum, 'lp' the "
            "relaxation-rounding sweep; mimose only)"
        ),
    )
    run_p.add_argument(
        "--bwd-ratio",
        type=float,
        default=None,
        metavar="R",
        help=(
            "force the solver's cost model to price the swap overlap "
            "window as R x mean forward time instead of measured backward "
            "times (explicit override; requires an action-pricing solver, "
            "e.g. --solver hybrid)"
        ),
    )
    run_p.add_argument(
        "--gap-sizes",
        type=_non_negative_int,
        default=0,
        metavar="N",
        help=(
            "after the run, report the solver's optimality gap vs the "
            "exact solver at N of the run's input sizes (0 disables)"
        ),
    )
    run_p.add_argument("--iterations", type=int, default=60)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--trace",
        action="store_true",
        help="attach an event-bus counter and print per-event totals",
    )
    run_p.add_argument(
        "--no-compiled",
        action="store_true",
        help=(
            "disable the compiled-template tier (near-recurrence fast "
            "path); results are bit-identical either way"
        ),
    )
    run_p.add_argument(
        "--drift-scenario",
        choices=DRIFT_SCENARIOS,
        default=None,
        help=(
            "make the task's input-size distribution non-stationary and "
            "arm mimose's lifecycle drift monitors (online replanning)"
        ),
    )
    run_p.add_argument(
        "--static-fit",
        action="store_true",
        help=(
            "freeze mimose's initial fit (no re-collection, no refits) — "
            "the drift-ablation comparator (mimose only)"
        ),
    )
    _add_fault_options(run_p)
    run_p.set_defaults(func=_cmd_run)

    sweep_p = sub.add_parser("sweep", help="Fig 10-style budget sweep")
    sweep_p.add_argument("--task", choices=sorted(TASKS), required=True)
    sweep_p.add_argument("--planners", default="")
    sweep_p.add_argument("--points", type=int, default=4)
    sweep_p.add_argument("--iterations", type=int, default=60)
    sweep_p.add_argument("--seed", type=int, default=0)
    sweep_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the grid (results are byte-identical "
            "to --jobs 1, in the same order)"
        ),
    )
    sweep_p.add_argument(
        "--no-compiled",
        action="store_true",
        help=(
            "disable the compiled-template tier (near-recurrence fast "
            "path); results are bit-identical either way"
        ),
    )
    sweep_p.add_argument(
        "--drift-scenario",
        choices=DRIFT_SCENARIOS,
        default=None,
        help=(
            "make the task's input-size distribution non-stationary; "
            "arms drift monitors on the sweep's mimose points"
        ),
    )
    sweep_p.add_argument(
        "--gap-sizes",
        type=_non_negative_int,
        default=0,
        metavar="N",
        help=(
            "attach per-grid-point optimality gaps vs the exact solver "
            "at N input sizes (0 disables)"
        ),
    )
    _add_fault_options(sweep_p)
    sweep_p.set_defaults(func=_cmd_sweep)

    table_p = sub.add_parser("table", help="regenerate a paper table")
    table_p.add_argument("number", type=int, choices=(1, 3, 4, 5))
    table_p.add_argument("--iterations", type=int, default=120)
    table_p.add_argument(
        "--gaps",
        action="store_true",
        help=(
            "fill Table I's optimality_gap column from a fitted mini-run "
            "(table 1 only; costs a short TC-Bert fit)"
        ),
    )
    table_p.set_defaults(func=_cmd_table)

    gaps_p = sub.add_parser(
        "gaps",
        help="per-solver optimality gaps vs the exact solver (CI gate)",
    )
    gaps_p.add_argument("--task", choices=sorted(TASKS), default="TC-Bert")
    gaps_p.add_argument("--sizes", type=int, default=3)
    gaps_p.add_argument("--seed", type=int, default=0)
    gaps_p.set_defaults(func=_cmd_gaps)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
