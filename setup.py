"""Legacy setup shim.

The project is configured entirely by pyproject.toml; this file exists so
`python setup.py develop` works on fully offline machines where pip's
editable-install path requires the `wheel` package (as in the environment
this reproduction was built in).
"""

from setuptools import setup

setup()
