#!/usr/bin/env python3
"""Extending Mimose: plug in a custom checkpoint scheduler.

§IV-D: "Mimose still reserves a flexible interface for users to
experiment with other scheduling algorithms".  This example implements a
deliberately naive latest-first scheduler (the opposite of Algorithm 1's
earliest-timestamp preference), runs it head-to-head against the paper's
greedy scheduler and the knapsack alternative, and shows why the paper
prefers early layers: checkpointing late layers barely lowers the peak
(Fig 9), so latest-first needs a larger reserve to stay OOM-free.

Usage:
    python examples/custom_scheduler.py [--iterations 80]
"""

from __future__ import annotations

import argparse

from repro.core.planner import MimosePlanner
from repro.core.scheduler import (
    GreedyScheduler,
    KnapsackScheduler,
    Scheduler,
    SchedulerInput,
)
from repro.engine.events import OomHit, TimeCharged
from repro.engine.executor import TrainingExecutor
from repro.experiments.report import render_table
from repro.experiments.tasks import GB, load_task
from repro.planners.base import ModelView


class SchedulerScorecard:
    """Event-bus observer: recompute seconds and OOM hits per run.

    Subscribes to the typed event stream instead of re-deriving the
    numbers from per-iteration stats — the pattern any custom metric
    should follow (see docs/architecture.md).
    """

    def __init__(self) -> None:
        self.recompute_s = 0.0
        self.oom_hits = 0

    def attach(self, bus) -> "SchedulerScorecard":
        bus.subscribe(self, TimeCharged, OomHit)
        return self

    def __call__(self, event) -> None:
        if isinstance(event, OomHit):
            self.oom_hits += 1
        elif event.component == "recompute":
            self.recompute_s += event.seconds


class LatestFirstScheduler(Scheduler):
    """Checkpoint the *latest* (largest-timestamp) units first.

    A deliberately bad policy: late units' recomputes happen at the start
    of backward, while every earlier activation is still resident, so
    the realised peak stays high (Fig 9's pathology).
    """

    name = "latest-first"

    def schedule(self, inp: SchedulerInput) -> frozenset[str]:
        if inp.excess_bytes <= 0:
            return frozenset()
        by_latest = sorted(inp.est_bytes, key=lambda u: -inp.order[u])
        chosen: list[str] = []
        remaining = inp.excess_bytes
        for unit in by_latest:
            if remaining <= 0:
                break
            chosen.append(unit)
            remaining -= inp.est_bytes[unit]
        return frozenset(chosen)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=80)
    parser.add_argument("--budget-gb", type=float, default=4.0)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    budget = int(args.budget_gb * GB)
    rows = []
    for scheduler in (GreedyScheduler(), KnapsackScheduler(), LatestFirstScheduler()):
        task = load_task("TC-Bert", iterations=args.iterations, seed=args.seed)
        model = task.fresh_model()
        planner = MimosePlanner(budget, scheduler=scheduler)
        planner.setup(ModelView(model))
        # replay=False: execution events are emitted by *simulated*
        # iterations only, and this scorecard wants to see every one
        # (a replayed iteration emits just ReplayHit/IterationEnd).
        executor = TrainingExecutor(
            model, planner, capacity_bytes=budget, replay=False
        )
        card = SchedulerScorecard().attach(executor.events)
        total = 0.0
        peak = 0
        ooms = 0
        for batch in task.loader:
            stats = executor.step(batch)
            total += stats.total_time
            peak = max(peak, stats.peak_in_use)
            ooms += stats.oom
        rows.append(
            {
                "scheduler": scheduler.name,
                "total_time_s": total,
                "recompute_s": card.recompute_s,
                "peak_gb": peak / GB,
                "final_headroom_gb": planner.headroom_bytes / GB,
                "oom_iterations": ooms,
                "oom_hits": card.oom_hits,
            }
        )
    print(
        render_table(
            rows,
            title=f"TC-Bert @ {args.budget_gb} GB: pluggable schedulers "
            f"({args.iterations} iterations)",
        )
    )
    greedy_peak = rows[0]["peak_gb"]
    latest_peak = rows[-1]["peak_gb"]
    print(
        f"\nlatest-first realises a higher peak ({latest_peak:.2f} GB vs "
        f"{greedy_peak:.2f} GB for\nAlgorithm 1) for the same amount of "
        "recomputation: late units rematerialise\nwhile everything earlier "
        "is still resident (Fig 9), eating into the reserve —\nexactly why "
        "Algorithm 1 prefers the earliest timestamps within a bucket."
    )
    assert latest_peak >= greedy_peak


if __name__ == "__main__":
    main()
