#!/usr/bin/env python3
"""Fine-tuning scenario: watch Mimose's two-phase lifecycle up close.

Simulates fine-tuning RoBERTa-base on a SWAG-like multiple-choice stream
(the paper's MC-Roberta task) and prints an iteration-by-iteration trace:

* the first ~10 iterations run in *sheltered* mode (shuttling collector),
* then the estimator is fitted and the planner turns *responsive* —
  cache misses generate plans in well under a millisecond, cache hits
  are effectively free,
* inputs far larger than anything measured trigger a one-off
  re-collection (the paper's O(n/N) amortised cost).

Usage:
    python examples/nlp_finetune.py [--budget-gb 3.5] [--iterations 60]
"""

from __future__ import annotations

import argparse

from repro.core.planner import MimosePlanner
from repro.engine.executor import TrainingExecutor
from repro.experiments.tasks import GB, load_task
from repro.planners.base import ModelView


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget-gb", type=float, default=3.5)
    parser.add_argument("--iterations", type=int, default=60)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    task = load_task("MC-Roberta", iterations=args.iterations, seed=args.seed)
    budget = int(args.budget_gb * GB)
    model = task.fresh_model()
    planner = MimosePlanner(budget)
    planner.setup(ModelView(model))
    executor = TrainingExecutor(model, planner, capacity_bytes=budget)

    print(
        f"MC-Roberta under {args.budget_gb} GB "
        f"(RoBERTa-base, SWAG-like lengths, batch 16x4 choices)\n"
    )
    header = (
        f"{'iter':>4} {'seqlen':>6} {'mode':>10} {'ckpt':>4} "
        f"{'peak GB':>8} {'plan ms':>8} {'iter ms':>8} {'cache':>6}"
    )
    print(header)
    print("-" * len(header))
    for i, batch in enumerate(task.loader, 1):
        stats = executor.step(batch)
        cache = f"{planner.cache.hit_rate:.0%}" if planner.cache.hits else "-"
        print(
            f"{i:>4} {batch.shape[-1]:>6} {stats.mode:>10} "
            f"{stats.num_checkpointed:>4} {stats.peak_in_use / GB:>8.2f} "
            f"{1e3 * stats.planning_time:>8.3f} "
            f"{1e3 * stats.total_time:>8.1f} {cache:>6}"
        )
        assert not stats.oom, "Mimose must respect the budget"

    print(
        f"\ncollected {planner.collect_count} sheltered iterations, "
        f"fitted the estimator {planner.fit_count} time(s), "
        f"generated {planner.plan_count} plans, "
        f"cache hit rate {planner.cache.hit_rate:.0%}"
    )


if __name__ == "__main__":
    main()
