#!/usr/bin/env python3
"""Quickstart: train Bert-base under a 4 GB budget with Mimose.

Runs 40 iterations of the TC-Bert workload (GLUE-QQP-like variable-length
batches) three ways — no planning, static Sublinear, and Mimose — and
prints the per-planner summary.  This is the paper's pitch in one screen:
same budget, input-aware planning, higher throughput.

Usage:
    python examples/quickstart.py [--budget-gb 4] [--iterations 80]
"""

from __future__ import annotations

import argparse

from repro.experiments.report import render_table
from repro.experiments.runner import run_task
from repro.experiments.tasks import GB, load_task


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget-gb", type=float, default=4.0)
    parser.add_argument("--iterations", type=int, default=80)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    task = load_task("TC-Bert", iterations=args.iterations, seed=args.seed)
    budget = int(args.budget_gb * GB)
    lb, ub = task.memory_bounds()
    print(
        f"TC-Bert (Bert-base on GLUE-QQP-like data, batch 32)\n"
        f"memory bounds: full-checkpoint {lb / GB:.2f} GB, "
        f"no-checkpoint {ub / GB:.2f} GB; budget {budget / GB:.2f} GB\n"
    )

    baseline = run_task(task, "baseline", budget)
    rows = []
    for planner in ("baseline", "sublinear", "dtr", "mimose"):
        r = baseline if planner == "baseline" else run_task(task, planner, budget)
        rows.append(
            {
                "planner": planner,
                "normalized_time": r.normalized_time(baseline),
                "peak_used_gb": r.peak_in_use / GB,
                "peak_reserved_gb": r.peak_reserved / GB,
                "respects_budget": r.peak_reserved <= budget
                or planner == "baseline",
                "oom_iterations": r.oom_count,
            }
        )
    print(render_table(rows, title=f"{args.iterations} iterations @ {args.budget_gb} GB"))
    print(
        "\nMimose adapts its checkpoint plan to each batch's sequence "
        "length,\nso small batches skip recomputation entirely while large "
        "ones stay\nwithin budget — the normalized_time column shows the "
        "resulting win."
    )


if __name__ == "__main__":
    main()
