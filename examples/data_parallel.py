#!/usr/bin/env python3
"""Data-parallel fine-tuning: input dynamics become straggler dynamics.

Runs the TC-Bert workload on 4 simulated GPUs.  Each rank collates its
own batch, so sequence-length variance turns into step-time imbalance —
every step waits for the rank that drew the longest batch.  The example
compares Mimose against Sublinear per rank and reports how much of each
step is straggler wait versus exposed all-reduce.  (Mimose's sheltered
collection also lands on the critical path, so very short runs favour
the static planner; the default 80 steps is past the crossover.)

Usage:
    python examples/data_parallel.py [--world-size 4] [--steps 80]
"""

from __future__ import annotations

import argparse

from repro.core.planner import MimosePlanner
from repro.data.datasets import DataLoader, make_dataset
from repro.engine.ddp import DataParallelExecutor
from repro.experiments.report import render_table
from repro.models.registry import build_model
from repro.planners.sublinear import SublinearPlanner

GB = 1024**3


def run(planner_name: str, world_size: int, steps: int, budget: int) -> dict:
    loaders = [
        DataLoader(make_dataset("glue-qqp"), 32, steps, seed=40 + r)
        for r in range(world_size)
    ]
    worst = loaders[0].worst_case_batch()

    def planner_factory(rank: int):
        if planner_name == "mimose":
            return MimosePlanner(budget)
        return SublinearPlanner(budget, worst_case_batch=worst)

    ddp = DataParallelExecutor(
        lambda: build_model("bert-base"),
        planner_factory,
        world_size,
        capacity_bytes=budget,
    )
    imbalance = 0.0
    exposed = 0.0
    ooms = 0
    for step_batches in zip(*loaders):
        stats = ddp.step(list(step_batches))
        imbalance += stats.imbalance
        exposed += stats.exposed_allreduce
        ooms += stats.oom
    return {
        "planner (per rank)": planner_name,
        "mean_step_ms": 1e3 * ddp.mean_step_time,
        "mean_imbalance": imbalance / ddp.steps,
        "exposed_allreduce_ms": 1e3 * exposed / ddp.steps,
        "oom_steps": ooms,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--world-size", type=int, default=4)
    parser.add_argument("--steps", type=int, default=80)
    parser.add_argument("--budget-gb", type=float, default=4.0)
    args = parser.parse_args()

    budget = int(args.budget_gb * GB)
    rows = [
        run(name, args.world_size, args.steps, budget)
        for name in ("sublinear", "mimose")
    ]
    print(
        render_table(
            rows,
            title=(
                f"TC-Bert x{args.world_size} ranks @ {args.budget_gb} GB "
                f"per rank ({args.steps} steps)"
            ),
        )
    )
    print(
        "\nEvery step waits for the rank with the longest batch; Mimose's "
        "per-rank,\ninput-aware plans shrink exactly the recompute that "
        "lands on that critical path."
    )


if __name__ == "__main__":
    main()
