#!/usr/bin/env python3
"""Visualise (in ASCII) the memory timeline of one training iteration.

Renders bytes-in-use sampled at every unit boundary for three executions
of the same Bert-base batch: no checkpointing, full checkpointing, and a
Mimose-style partial plan.  The no-checkpoint curve climbs through the
forward pass and falls through the backward; checkpointing flattens the
climb at the cost of recompute bumps on the way down — the geometry every
planner in the paper is trading against.

The samples come straight off the executor's event bus: a small observer
subscribes to ``UnitForward``/``UnitBackward`` and records one point per
unit boundary — the same stream ``MemoryTimeline`` consumes internally.

Usage:
    python examples/memory_timeline.py [--seqlen 256] [--batch 32]
"""

from __future__ import annotations

import argparse

from repro.engine.events import UnitBackward, UnitForward
from repro.engine.executor import TrainingExecutor
from repro.models.base import BatchInput
from repro.models.registry import build_model
from repro.planners.base import CheckpointPlan, ModelView, PlanDecision
from repro.planners.none import NoCheckpointPlanner
from repro.tensorsim.dtypes import INT64

GB = 1024**3


class CurveObserver:
    """Event-bus subscriber collecting (time, bytes-in-use) samples."""

    def __init__(self) -> None:
        self.samples: list[tuple[float, int]] = []

    def attach(self, bus) -> "CurveObserver":
        bus.subscribe(self, UnitForward, UnitBackward)
        return self

    def __call__(self, event) -> None:
        self.samples.append((event.time, event.bytes_in_use))


def render_curve(samples, width: int = 64, height: int = 12) -> str:
    """Tiny ASCII line chart of (time, bytes) samples."""
    if not samples:
        return "(no samples)"
    times = [t for t, _ in samples]
    values = [v for _, v in samples]
    t0, t1 = min(times), max(times)
    v1 = max(values)
    grid = [[" "] * width for _ in range(height)]
    for t, v in zip(times, values):
        x = int((t - t0) / (t1 - t0 or 1) * (width - 1))
        y = int(v / (v1 or 1) * (height - 1))
        grid[height - 1 - y][x] = "*"
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"0s{' ' * (width - 12)}{t1 - t0:.3f}s  (peak {v1 / GB:.2f} GB)")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seqlen", type=int, default=256)
    parser.add_argument("--batch", type=int, default=32)
    args = parser.parse_args()

    batch = BatchInput((args.batch, args.seqlen), INT64)
    plans = [
        ("no checkpointing", CheckpointPlan.none()),
        (
            "checkpoint all encoders",
            CheckpointPlan.of([f"encoder.{i}" for i in range(12)], "all"),
        ),
        (
            "checkpoint first six encoders (Mimose-style partial plan)",
            CheckpointPlan.of([f"encoder.{i}" for i in range(6)], "half"),
        ),
    ]
    for title, plan in plans:
        model = build_model("bert-base")
        planner = NoCheckpointPlanner(16 * GB)
        planner.setup(ModelView(model))
        executor = TrainingExecutor(model, planner, capacity_bytes=16 * GB)
        curve = CurveObserver().attach(executor.events)
        stats = executor.run_iteration(batch, PlanDecision(plan))
        print(f"\n=== {title} ===")
        print(render_curve(curve.samples))
        print(
            f"iteration {1e3 * stats.total_time:.0f} ms "
            f"(recompute {1e3 * stats.recompute_time:.0f} ms), "
            f"peak {stats.peak_in_use / GB:.2f} GB"
        )


if __name__ == "__main__":
    main()
