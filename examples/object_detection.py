#!/usr/bin/env python3
"""Object-detection scenario: multi-scale resized COCO-like images.

Runs the paper's OD-R50 task (ResNet-50 detector, batch 8, multi-scale
resize 480-800/1333) under a tight budget and compares Mimose against the
static planners whose traced graphs cannot follow the changing image
shapes — reproducing §VI-B's observation that only Mimose and Sublinear
strictly obey the budget on detection workloads.

Usage:
    python examples/object_detection.py [--iterations 40]
"""

from __future__ import annotations

import argparse

from repro.experiments.report import render_table
from repro.experiments.runner import run_task
from repro.experiments.tasks import GB, load_task


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=40)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    task = load_task("OD-R50", iterations=args.iterations, seed=args.seed)
    lb, ub = task.memory_bounds()
    budget = int(lb * 1.25)
    print(
        f"OD-R50: ResNet-50 detector, batch 8, COCO-like multi-scale resize\n"
        f"memory bounds {lb / GB:.2f}-{ub / GB:.2f} GB; "
        f"budget {budget / GB:.2f} GB\n"
        "note: the detector head's proposal tensors are content-dependent, "
        "so Mimose\nreserves memory for them instead of predicting "
        "(paper §IV-C).\n"
    )

    baseline = run_task(task, "baseline", budget)
    rows = []
    for planner in ("baseline", "sublinear", "checkmate", "monet", "dtr", "mimose"):
        r = baseline if planner == "baseline" else run_task(task, planner, budget)
        rows.append(
            {
                "planner": planner,
                "normalized_time": r.normalized_time(baseline),
                "peak_reserved_gb": r.peak_reserved / GB,
                "respects_budget": planner != "baseline"
                and r.peak_reserved <= budget,
                "oom_iterations": r.oom_count,
            }
        )
    print(render_table(rows, title=f"{args.iterations} iterations @ {budget / GB:.2f} GB"))
    obeyers = [r["planner"] for r in rows if r["respects_budget"]]
    print(f"\nplanners that stayed within budget: {', '.join(obeyers)}")


if __name__ == "__main__":
    main()
