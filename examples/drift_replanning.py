#!/usr/bin/env python3
"""Online replanning under input-distribution drift.

The paper's premise is that input tensors are dynamic *within* a
workload; this example pushes one step further — the input
*distribution itself* shifts mid-run (a curriculum ramp, a regime
switch, rotating shape buckets).  A model fitted on the warm-up window
then extrapolates, and its plans under-reserve.

The lifecycle controller (`repro.core.lifecycle`) handles this
online: Page–Hinkley / CUSUM monitors watch the residual and
input-size streams, and on drift the controller evicts the stale half
of the collection window, re-collects, refits and flushes every
fast-path tier.  This script subscribes to the lifecycle events on the
executor's bus and prints the resulting timeline: every state
transition, every monitor firing, every (re)fit.

Usage:
    python examples/drift_replanning.py [--scenario regime-switch]
"""

from __future__ import annotations

import argparse

from repro.core.planner import MimosePlanner
from repro.engine.events import (
    DriftDetected,
    EstimatorRefit,
    LifecycleTransition,
)
from repro.engine.executor import TrainingExecutor
from repro.experiments.tasks import GB, load_task
from repro.planners.base import ModelView


class LifecycleLog:
    """Event-bus observer: narrate the lifecycle as the run unfolds.

    The executor emits ``IterationObserved`` into the same bus, which
    drives the controller itself — this observer only *listens* to the
    controller's outbound events, the supported way to track replanning
    without touching planner internals (see docs/architecture.md).
    """

    def __init__(self) -> None:
        self.transitions = 0
        self.drifts = 0
        self.refits = 0

    def attach(self, bus) -> "LifecycleLog":
        bus.subscribe(self, LifecycleTransition, DriftDetected, EstimatorRefit)
        return self

    def __call__(self, event) -> None:
        if isinstance(event, LifecycleTransition):
            self.transitions += 1
            print(
                f"  iter {event.iteration:>3}  {event.previous:>10} -> "
                f"{event.current:<10} ({event.reason})"
            )
        elif isinstance(event, DriftDetected):
            self.drifts += 1
            print(
                f"  iter {event.iteration:>3}  DRIFT via {event.monitor} "
                f"(statistic {event.statistic:.3f} > "
                f"threshold {event.threshold:.3f})"
            )
        else:
            self.refits += 1
            flushed = "flushed fast paths" if event.invalidated else "initial"
            print(
                f"  iter {event.iteration:>3}  fit #{event.fit_count} on "
                f"{event.window_iterations}-iteration window ({flushed})"
            )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario",
        default="regime-switch",
        choices=("regime-switch", "curriculum", "bucket-rotation"),
    )
    parser.add_argument("--iterations", type=int, default=60)
    parser.add_argument("--budget-gb", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    budget = int(args.budget_gb * GB)
    task = load_task(
        "TC-Bert",
        iterations=args.iterations,
        seed=args.seed,
        drift_scenario=args.scenario,
    )
    model = task.fresh_model()
    planner = MimosePlanner(budget, drift_detection=True)
    planner.setup(ModelView(model))
    executor = TrainingExecutor(model, planner, capacity_bytes=budget)
    log = LifecycleLog().attach(executor.events)

    print(
        f"TC-Bert @ {args.budget_gb} GB, scenario={args.scenario}, "
        f"{args.iterations} iterations\n"
    )
    peak = 0
    ooms = 0
    for batch in task.loader:
        stats = executor.step(batch)
        peak = max(peak, stats.peak_in_use)
        ooms += stats.oom

    print(
        f"\n{log.transitions} transitions, {log.drifts} drift detections, "
        f"{log.refits} fits ({log.refits - 1} online refits); "
        f"peak {peak / GB:.2f} GB, {ooms} OOM iterations."
    )
    print(
        "Each refit retrained the estimator on a re-collected window and\n"
        "invalidated the replay/compiled tiers — plans after the shift come\n"
        "from a model fitted on the *new* distribution, not extrapolated\n"
        "from the old one.  Compare `--static-fit` on the CLI, which\n"
        "freezes the warm-up fit and OOMs under the same shift."
    )
    assert log.refits >= 2, "expected at least one online refit under drift"


if __name__ == "__main__":
    main()
